(* The analysis-agnostic half of the summary cache: any registered Spec
   gets per-SCC content-addressed persistence by describing its summary
   codec and a solve session.  This is the machinery [Summary] always
   had for the escape analysis, factored out so the usage and
   spine-liveness analyses (and any future Spec) inherit it — each under
   its own key namespace ([Skey.of_program ~analysis]), so one program
   stores one record per (SCC, analysis) and a record can never be
   decoded by the wrong Spec.

   Abstract values contain closures and cannot be persisted; what the
   reports actually consume — and therefore what the cache stores — is
   the per-definition summary data behind them.  A fully warm program is
   reported without constructing a solver at all (zero entry
   evaluations); a partial hit builds one session and summarizes only
   the missing SCCs' members, whose solve demand-evaluates just their
   cones. *)

module J = Nml.Json

type 'summary session = {
  summarize : string -> 'summary;  (* definition name -> settled summary *)
  evaluations : unit -> int;  (* solver entry evaluations so far *)
}

type 'summary spec = {
  analysis : string;  (* registry name; also the Skey namespace *)
  def_name : 'summary -> string;
  to_json : 'summary -> J.t;
  of_json : J.t -> 'summary;  (* may raise; any exception is a miss *)
  session : Nml.Infer.program -> 'summary session;  (* created on first miss *)
}

type 'summary outcome = {
  summaries : 'summary list;  (* one per definition, program order *)
  evaluations : int;  (* solver entry evaluations actually performed *)
  scc_hits : int;
  scc_misses : int;
}

let record_to_json spec ~key summaries =
  J.Obj
    [
      ("schema", J.Str Skey.schema_version);
      ("analysis", J.Str spec.analysis);
      ("key", J.Str key);
      ("defs", J.Arr (List.map spec.to_json summaries));
    ]

(* [None] on any shape mismatch: the caller treats it as a miss. *)
let record_of_json spec ~key ~members j =
  let str = function J.Str s -> s | _ -> failwith "expected a string" in
  match
    let schema = str (Option.get (J.member "schema" j)) in
    let analysis = str (Option.get (J.member "analysis" j)) in
    let stored_key = str (Option.get (J.member "key" j)) in
    let defs =
      match J.member "defs" j with
      | Some (J.Arr xs) -> List.map spec.of_json xs
      | _ -> failwith "expected defs"
    in
    (schema, analysis, stored_key, defs)
  with
  | exception _ -> None
  | schema, analysis, stored_key, defs ->
      let names = List.sort String.compare (List.map spec.def_name defs) in
      if
        String.equal schema Skey.schema_version
        && String.equal analysis spec.analysis
        && String.equal stored_key key
        && names = List.sort String.compare members
      then Some defs
      else None

let analyze spec ?store prog =
  match store with
  | None ->
      let s = spec.session prog in
      let summaries =
        List.map (fun (name, _) -> s.summarize name) prog.Nml.Infer.schemes
      in
      { summaries; evaluations = s.evaluations (); scc_hits = 0; scc_misses = 0 }
  | Some store ->
      let keys = Skey.of_program ~analysis:spec.analysis prog in
      let by_name = Hashtbl.create 16 in
      let session = ref None in
      let the_session () =
        match !session with
        | Some s -> s
        | None ->
            let s = spec.session prog in
            session := Some s;
            s
      in
      let hits = ref 0 and misses = ref 0 in
      List.iter
        (fun (key, members) ->
          let decode = record_of_json spec ~key ~members in
          let cached =
            match Store.load store ~key with
            | None -> None
            | Some j -> (
                match decode j with
                | Some defs -> Some defs
                | None -> (
                    (* the loaded copy (possibly the in-memory tier) is
                       corrupted: self-heal by rebuilding the entry from
                       the on-disk store before falling back to a cold
                       re-solve *)
                    match Store.reload store ~key with
                    | None -> None
                    | Some j -> decode j))
          in
          match cached with
          | Some defs ->
              incr hits;
              List.iter (fun d -> Hashtbl.replace by_name (spec.def_name d) d) defs
          | None ->
              incr misses;
              let defs = List.map (the_session ()).summarize members in
              List.iter (fun d -> Hashtbl.replace by_name (spec.def_name d) d) defs;
              Store.save store ~key (record_to_json spec ~key defs))
        (Skey.sccs keys);
      {
        summaries =
          List.map (fun (name, _) -> Hashtbl.find by_name name) prog.Nml.Infer.schemes;
        evaluations =
          (match !session with None -> 0 | Some s -> s.evaluations ());
        scc_hits = !hits;
        scc_misses = !misses;
      }
