lib/runtime/machine.ml: Array Format Hashtbl Ir List Map Nml Option Stats String
