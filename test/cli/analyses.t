The pluggable analysis registry behind nmlc analyze --analysis.

  $ alias nmlc=../../bin/nmlc.exe

The registry lists every analysis with its domain and aliases:

  $ nmlc analyze --list-analyses
  registered analyses:
    escape           which bottom spines of each argument may escape into the result
                     domain: B_e chains <e,s> over list spines (Park-Goldberg)
                     cache: nmlc/summary-cache-v2/escape
    usage            is each argument inspected, retained, both, or neither (alias: strictness)
                     domain: dep x use bits per argument
                     cache: nmlc/summary-cache-v2/usage
    spine-liveness   which part of each argument's heap structure the callee needs (alias: liveness)
                     domain: dep x head x tail bits per argument (Karkare-style)
                     cache: nmlc/summary-cache-v2/spine-liveness
    escape-x-usage   storage verdicts per argument: dead / scratch / spine-scratch / retained (alias: product)
                     domain: reduced product of escape and usage
                     cache: nmlc/summary-cache-v2/escape-x-usage
    sharing          may the result share cells (or its spine) with each argument (alias: alias)
                     domain: dep x spine sharing pairs per argument (Hill-Spoto-style)
                     cache: nmlc/summary-cache-v2/sharing

The default is the escape analysis (the report the paper's appendix
shows); --analysis picks any registered one.  Usage tells strict
consumers (rev inspects, append retains its second argument untouched):

  $ nmlc analyze ../../examples/programs/reverse.nml --analysis usage
  append : int list -> int list -> int list
    U(append, 1) = used  -- inspected and may be retained in the result
    U(append, 2) = carried  -- retained in the result but never inspected
  
  rev : int list -> int list
    U(rev, 1) = used  -- inspected and may be retained in the result


Spine-liveness tells which part of the argument's structure the callee
actually needs (aliases work too):

  $ nmlc analyze ../../examples/programs/reverse.nml --analysis liveness
  append : int list -> int list -> int list
    L(append, 1) = spine-live  -- the spine is traversed but never retained
    L(append, 2) = live  -- the argument may be retained in the result
  
  rev : int list -> int list
    L(rev, 1) = spine-live  -- the spine is traversed but never retained


The reduced product refines both components into one storage verdict
per argument:

  $ nmlc analyze ../../examples/programs/reverse.nml --analysis escape-x-usage
  append : int list -> int list -> int list
    P(append, 1) = spine-scratch  [usage used, escape <1,0>]  -- elements may be retained; the unescaping top spines are reusable (1 of 1 spine level reclaimable)
    P(append, 2) = retained  [usage carried, escape <1,1>]  -- the argument may live on in the result
  
  rev : int list -> int list
    P(rev, 1) = spine-scratch  [usage used, escape <1,0>]  -- elements may be retained; the unescaping top spines are reusable (1 of 1 spine level reclaimable)


--stats reports the per-analysis solver counters:

  $ nmlc analyze ../../examples/programs/reverse.nml --analysis usage --stats
  append : int list -> int list -> int list
    U(append, 1) = used  -- inspected and may be retained in the result
    U(append, 2) = carried  -- retained in the result but never inspected
  
  rev : int list -> int list
    U(rev, 1) = used  -- inspected and may be retained in the result
  -- solver --
  analysis            usage
  definitions         2
  entry evaluations   3


Unknown names are a diagnostic, not a crash:

  $ nmlc analyze ../../examples/programs/reverse.nml --analysis nope
  error: unknown analysis nope (try --list-analyses)
  [1]

Every analysis batches through the persistent cache in its own key
namespace: a cold sweep misses, the warm rerun is evaluation-free, and
switching analyses over the same store never collides (the escape run
still has to solve its own summaries):

  $ mkdir corpus
  $ cat > corpus/rev.nml <<'EOF'
  > letrec
  >   append x y = if null x then y else cons (car x) (append (cdr x) y);
  >   rev l = if null l then nil else append (rev (cdr l)) (cons (car l) nil)
  > in rev [1, 2, 3]
  > EOF
  $ nmlc batch corpus --analysis usage --jobs 1 --cache cache | grep '^batch:'
  batch: 1 file(s), 1 ok, 0 error(s); 3 entry evaluation(s), 0 scc hit(s), 2 scc miss(es)
  $ nmlc batch corpus --analysis usage --jobs 1 --cache cache | grep '^batch:'
  batch: 1 file(s), 1 ok, 0 error(s); 0 entry evaluation(s), 2 scc hit(s), 0 scc miss(es)
  $ nmlc batch corpus --jobs 1 --cache cache | grep '^batch:'
  batch: 1 file(s), 1 ok, 0 error(s); 4 entry evaluation(s), 0 scc hit(s), 2 scc miss(es)
  $ nmlc batch corpus --jobs 1 --cache cache | grep '^batch:'
  batch: 1 file(s), 1 ok, 0 error(s); 0 entry evaluation(s), 2 scc hit(s), 0 scc miss(es)
