(** The analysis daemon behind [nmlc serve].

    Accepts framed JSON-RPC requests ({!Frame}, {!Protocol}) over a
    Unix socket (one thread per connection) or stdio, keeps the summary
    store hot in memory, and dispatches analysis onto the supervised
    worker pool ({!Pool}).  Protocol failures, deadlines, load
    shedding, worker crashes and the drain all answer with structured
    [SRV0xx] errors — no input can kill the server. *)

type transport = Socket of string | Stdio

type config = {
  transport : transport;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** bounded queue; beyond it the oldest is shed *)
  default_deadline_ms : int;  (** [<= 0]: no default deadline *)
  max_frame : int;  (** inbound frame size limit, bytes *)
  store : Cache.Store.t option;
      (** open with [~memory:true ~write_back:true] to get the hot
          in-memory tier the daemon exists for *)
  fault : Fault.t;  (** [--inject-fault] *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM drain handlers (off for in-process
          test servers) *)
  quiet : bool;  (** suppress the stderr lifecycle log *)
}

val default_config : transport -> config

val run : config -> int
(** Serves until EOF (stdio), a [shutdown] request or a signal; then
    drains: in-flight requests finish, dirty summaries are flushed,
    the socket is unlinked.  Returns the process exit code ([0]). *)

val spawn : config -> unit -> unit
(** For in-process tests: runs the server on a background thread and
    returns a function that requests the drain and waits for it. *)
