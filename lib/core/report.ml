module Ty = Nml.Ty
module Eval = Nml.Eval

(* The verdict line is printed from plain data so a summary replayed from
   the persistent cache goes through the same code path as a fresh solve
   (bit-identical output is a batch-driver invariant). *)
let pp_line ppf ~func ~arg ~esc ~spines =
  let escaping = Besc.spines esc in
  let keep = max 0 (spines - escaping) in
  Format.fprintf ppf "  G(%s, %d) = %-6s" func arg (Besc.to_string esc);
  if Besc.equal esc Besc.zero then
    Format.fprintf ppf " -- no part of argument %d ever escapes" arg
  else if spines = 0 then
    Format.fprintf ppf " -- argument %d (not a list) may escape" arg
  else if escaping = 0 then
    Format.fprintf ppf " -- no spine of argument %d escapes, only elements may" arg
  else
    Format.fprintf ppf
      " -- top %d of %d spine(s) never escape; bottom %d may escape" keep spines
      escaping

(* ---- definition summaries -------------------------------------------------- *)

type arg_summary = {
  s_arg : int;
  s_spines : int;
  s_esc : Besc.t;
  s_components : (string * Besc.t) list;
}

type def_summary = {
  s_name : string;
  s_inst : string;
  s_args : arg_summary list;
  s_sharing : (int * int) option;
}

let summarize t name =
  let inst = Fixpoint.instance_ty t name in
  let verdicts = Analysis.global_all ~inst t name in
  let args =
    List.map
      (fun (v : Analysis.verdict) ->
        (* pair-typed parameters additionally get per-component verdicts *)
        let components =
          match
            Analysis.component_paths
              (List.nth (Ty.arg_tys inst v.Analysis.arity) (v.Analysis.arg - 1))
          with
          | [ [] ] -> []
          | _ ->
              List.map
                (fun (path, (cv : Analysis.verdict)) ->
                  (Format.asprintf "%a" Analysis.pp_path path, cv.Analysis.esc))
                (Analysis.global_components ~inst t name ~arg:v.Analysis.arg)
        in
        {
          s_arg = v.Analysis.arg;
          s_spines = v.Analysis.spines;
          s_esc = v.Analysis.esc;
          s_components = components;
        })
      verdicts
  in
  let sharing =
    if verdicts = [] then None
    else
      let info = Sharing.result_unshared ~inst t name in
      if info.Sharing.result_spines > 0 then
        Some (info.Sharing.unshared_top, info.Sharing.result_spines)
      else None
  in
  { s_name = name; s_inst = Ty.to_string inst; s_args = args; s_sharing = sharing }

let pp_def_summary ppf s =
  Format.fprintf ppf "@[<v 0>%s : %s@," s.s_name s.s_inst;
  List.iter
    (fun a ->
      Format.fprintf ppf "%a@,"
        (fun ppf () -> pp_line ppf ~func:s.s_name ~arg:a.s_arg ~esc:a.s_esc ~spines:a.s_spines)
        ();
      List.iter
        (fun (path, esc) ->
          Format.fprintf ppf "    component %s = %s%s@," path (Besc.to_string esc)
            (if Besc.equal esc Besc.zero then "  (never escapes)" else ""))
        a.s_components)
    s.s_args;
  (match s.s_sharing with
  | Some (top, spines) ->
      Format.fprintf ppf
        "  sharing: top %d of the result's %d spine(s) are unshared in any call@," top
        spines
  | None -> ());
  Format.fprintf ppf "@]"

let definition ppf t name = pp_def_summary ppf (summarize t name)

let summarize_program t =
  let prog = Fixpoint.program t in
  List.map (fun (name, _) -> summarize t name) prog.Nml.Infer.schemes

let pp_program_summaries ppf summaries =
  Format.fprintf ppf "@[<v 0>";
  List.iter
    (fun s -> Format.fprintf ppf "%a@," (fun ppf () -> pp_def_summary ppf s) ())
    summaries;
  Format.fprintf ppf "@]"

let program ppf t = pp_program_summaries ppf (summarize_program t)

let call ppf t fname args =
  Format.fprintf ppf "@[<v 0>call: %s on %d argument(s)@,"  fname (List.length args);
  List.iteri
    (fun j _ ->
      let v = Analysis.local t fname args ~arg:(j + 1) in
      let keep = Analysis.non_escaping_top_spines v in
      Format.fprintf ppf "  L(%s, %d) = %-6s" fname (j + 1) (Besc.to_string v.Analysis.esc);
      if not (Analysis.escapes v) then Format.fprintf ppf " -- nothing escapes this call@,"
      else if v.Analysis.spines = 0 then Format.fprintf ppf " -- the argument may escape@,"
      else
        Format.fprintf ppf " -- top %d of %d spine(s) stay inside this call@," keep
          v.Analysis.spines)
    args;
  Format.fprintf ppf "@]"

let kleene_trace ?(max_iters = 12) ppf (prog : Nml.Infer.program) =
  let defs =
    List.map (fun (name, _) -> (name, Nml.Infer.instantiate_def prog name None)) prog.Nml.Infer.schemes
  in
  let d =
    List.fold_left
      (fun acc (_, tast) ->
        let m = ref acc in
        Nml.Tast.iter_tys (fun ty -> m := max !m (Ty.max_list_depth ty)) tast;
        !m)
      0 defs
  in
  Dvalue.ensure_d d;
  (* the G-style probe application of a definition's current iterate *)
  let g_escs value tast =
    let n = Ty.arity tast.Nml.Tast.ty in
    let arg_tys = Ty.arg_tys tast.Nml.Tast.ty n in
    List.mapi
      (fun i _ ->
        let ys =
          List.mapi
            (fun j ty -> if j = i then Dvalue.interesting ty else Dvalue.boring ty)
            arg_tys
        in
        (Dvalue.total_esc (Dvalue.apply_all value ys)))
      arg_tys
  in
  let pp_row ppf vals =
    List.iter
      (fun (name, escs) ->
        Format.fprintf ppf "  %s: %s" name
          (String.concat " " (List.map Besc.to_string escs)))
      vals
  in
  Format.fprintf ppf "@[<v 0>";
  let current = ref (List.map (fun (n, tast) -> (n, Dvalue.bottom tast.Nml.Tast.ty)) defs) in
  let stable = ref false in
  let k = ref 0 in
  while (not !stable) && !k <= max_iters do
    let snapshot = !current in
    let row =
      List.map (fun ((n, tast), (_, v)) -> (n, (g_escs v tast : Besc.t list)))
        (List.combine defs snapshot)
    in
    Format.fprintf ppf "iterate %d %a@," !k pp_row row;
    (* Jacobi: next iterate of every body under the snapshot *)
    let ctx =
      {
        Semantics.d = (fun () -> Dvalue.current_d ());
        global =
          (fun x _ty ->
            match List.assoc_opt x snapshot with
            | Some v -> v
            | None -> invalid_arg (Printf.sprintf "kleene_trace: unknown %s" x));
        max_iters = 100;
        iters = 0;
        capped = false;
        fv_cache = [];
      }
    in
    let next =
      List.map (fun (n, tast) -> (n, Semantics.eval ctx Semantics.Env.empty tast)) defs
    in
    stable :=
      List.for_all2 (fun (_, a) (_, b) -> Dvalue.equal a b) snapshot next;
    current := next;
    incr k
  done;
  if !stable then Format.fprintf ppf "stable after %d iterate(s)@," (!k - 1)
  else Format.fprintf ppf "(trace cut off at %d iterates)@," max_iters;
  Format.fprintf ppf "@]"

(* Figure 1: label every cons chain with its top spine index; the bottom
   index is derived from the value's total spine depth. *)
let spines_figure ppf value =
  let rec depth = function
    | Eval.Vcons (hd, tl) -> max (1 + depth hd) (depth tl)
    | _ -> 0
  in
  let total = depth value in
  let rec render ppf (v, top) =
    match v with
    | Eval.Vnil -> Format.fprintf ppf "[]"
    | Eval.Vcons _ ->
        let elems =
          let rec go = function
            | Eval.Vcons (hd, tl) -> hd :: go tl
            | _ -> []
          in
          go v
        in
        Format.fprintf ppf "@[<hov 2>(spine top=%d bottom=%d:@ %a)@]" top
          (total - top + 1)
          (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf e ->
               render ppf (e, top + 1)))
          elems
    | other -> Eval.pp_value ppf other
  in
  Format.fprintf ppf "@[<v 0>value with %d spine(s):@,%a@]" total render (value, 1)
