(* Closure conversion with flat environments and known-call
   optimization.

   Every lambda nest becomes one uncurried function in a global table;
   a closure is the function's id plus a flat array of captured values
   (no environment chains, no linked frames — one indirection from
   closure to any free variable).  Letrec-bound nests are {e known}:
   a grouped [Capp] at the nest's exact arity compiles to a direct
   [Kcall] that passes all arguments at once, skipping the per-argument
   intermediate closures a curried evaluator would build.  Everything
   else goes through the generic one-argument [Kapp], which builds
   partial applications until the callee's arity is reached.

   Letrec recursion uses the machine's slot semantics: binders are
   mutable slots created before any right-hand side runs, closures
   capture the slot itself (not its eventual value), and reading an
   unfilled slot is a runtime error — exactly the reference machine's
   read-before-definition behavior. *)

module Ast = Nml.Ast
module Ir = Runtime.Ir

type atom = Anf.atom

type cexpr =
  | Katom of atom
  | Kprim of Ast.prim * atom list
  | Kalloc of Ir.alloc * Anf.shape * atom list
  | Kreuse of Anf.reuse * atom list
  | Kclos of int * atom list  (** function id, captures in [free] order *)
  | Kcall of int * atom * atom list
      (** known flat call: function id, the closure (for its
          environment), the full argument row *)
  | Kapp of atom * atom  (** generic curried application *)
  | Kif of atom * kanf * kanf
  | Karena of Ir.arena_kind * int * kanf
  | Kblock of kanf

and kanf =
  | Klet of string * cexpr * kanf
  | Kletrec of (string * kanf) list * kanf
  | Kret of cexpr

type fundef = {
  fid : int;
  fname : string;  (** binder name for letrec nests, ["anon"] otherwise *)
  params : string list;  (** uncurried parameter row *)
  free : string list;  (** flat environment layout *)
  body : kanf;
}

type report = {
  functions : int;
  known_call_sites : int;
  generic_app_sites : int;
  closure_sites : int;
  max_env : int;
}

type prog = { funs : fundef array; entry : kanf; report : report }

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type info = Plain | Known of int * int  (** function id, arity *)

exception Internal of string

let internal fmt = Format.kasprintf (fun m -> raise (Internal m)) fmt

(* split a [Clam] nest into its uncurried parameter row and body; the
   boundary is the same one {!Anf.rhs_arity} counts — eta lambdas after
   a user lambda stay in the body, so the parameter row matches the
   arity calls were grouped at *)
let split_nest a =
  let rec go seen_user = function
    | Anf.Aret (Anf.Clam (x, b)) when not (Anf.is_eta_param x && seen_user) ->
        let ps, body = go (seen_user || not (Anf.is_eta_param x)) b in
        (x :: ps, body)
    | b -> ([], b)
  in
  go false a

let convert (a : Anf.anf) : prog =
  let funs = ref [] in
  let next = ref 0 in
  let known_calls = ref 0 and generic = ref 0 and clos_sites = ref 0 in
  let add_fun fname params free body =
    let fid = !next in
    incr next;
    funs := { fid; fname; params; free; body } :: !funs;
    fid
  in
  (* convert a lambda nest at its creation point: returns the closure
     expression; [scope] is the creating scope (capture info survives
     into the body, since captures copy the very same value or slot) *)
  let rec nest_closure scope fname params body =
    let bound = List.fold_left (fun s p -> SSet.add p s) SSet.empty params in
    let free = SSet.elements (SSet.diff (Anf.fv_anf body) bound) in
    let body_scope =
      let s =
        List.fold_left
          (fun s x ->
            match SMap.find_opt x scope with
            | Some i -> SMap.add x i s
            | None -> internal "capture of unbound %s" x)
          SMap.empty free
      in
      List.fold_left (fun s p -> SMap.add p Plain s) s params
    in
    let fid = add_fun fname params free (conv body_scope body) in
    incr clos_sites;
    (fid, Kclos (fid, List.map (fun x -> Anf.Avar x) free))
  and conv_cexpr scope (ce : Anf.cexpr) : cexpr =
    match ce with
    | Anf.Catom a -> Katom a
    | Anf.Cprim (p, az) -> Kprim (p, az)
    | Anf.Calloc (al, sh, az) -> Kalloc (al, sh, az)
    | Anf.Creuse (r, az) -> Kreuse (r, az)
    | Anf.Capp (f, [ a ]) -> (
        match f with
        | Anf.Avar g when (match SMap.find_opt g scope with
                          | Some (Known (_, 1)) -> true
                          | _ -> false) ->
            let fid =
              match SMap.find_opt g scope with
              | Some (Known (fid, _)) -> fid
              | _ -> assert false
            in
            incr known_calls;
            Kcall (fid, f, [ a ])
        | _ ->
            incr generic;
            Kapp (f, a))
    | Anf.Capp (f, az) -> (
        match f with
        | Anf.Avar g -> (
            match SMap.find_opt g scope with
            | Some (Known (fid, ar)) when ar = List.length az ->
                incr known_calls;
                Kcall (fid, f, az)
            | _ -> internal "grouped call of %s without a known arity" g)
        | Anf.Aconst _ -> internal "grouped call of a constant")
    | Anf.Cif (c, t, f) -> Kif (c, conv scope t, conv scope f)
    | Anf.Clam (x, b) ->
        let params, body = split_nest (Anf.Aret (Anf.Clam (x, b))) in
        snd (nest_closure scope "anon" params body)
    | Anf.Carena (k, sid, b) -> Karena (k, sid, conv scope b)
    | Anf.Cblock b -> Kblock (conv scope b)
  and conv scope (a : Anf.anf) : kanf =
    match a with
    | Anf.Alet (x, ce, body) ->
        Klet (x, conv_cexpr scope ce, conv (SMap.add x Plain scope) body)
    | Anf.Aletrec (bs, body) ->
        (* decide known-ness first: every right-hand side and the body
           see the same scope, mirroring slot creation order *)
        let arities =
          List.map (fun (x, rhs) -> (x, Anf.rhs_arity rhs)) bs
        in
        (* pre-assign function ids so mutually recursive nests can
           reference each other as known calls *)
        let fids =
          List.map
            (fun (x, ar) ->
              if ar > 0 then begin
                let fid = !next in
                incr next;
                (x, Some fid, ar)
              end
              else (x, None, 0))
            arities
        in
        let scope' =
          List.fold_left
            (fun s (x, fid, ar) ->
              match fid with
              | Some fid -> SMap.add x (Known (fid, ar)) s
              | None -> SMap.add x Plain s)
            scope fids
        in
        let bs' =
          List.map2
            (fun (x, rhs) (_, fid, _) ->
              match fid with
              | Some fid ->
                  let params, nbody = split_nest rhs in
                  let ce = nest_closure_at scope' fid x params nbody in
                  (x, Kret ce)
              | None -> (x, conv scope' rhs))
            bs fids
        in
        Kletrec (bs', conv scope' body)
    | Anf.Aret ce -> Kret (conv_cexpr scope ce)
  (* like [nest_closure] but at a pre-reserved id *)
  and nest_closure_at scope fid fname params body =
    let bound = List.fold_left (fun s p -> SSet.add p s) SSet.empty params in
    let free = SSet.elements (SSet.diff (Anf.fv_anf body) bound) in
    let body_scope =
      let s =
        List.fold_left
          (fun s x ->
            match SMap.find_opt x scope with
            | Some i -> SMap.add x i s
            | None -> internal "capture of unbound %s" x)
          SMap.empty free
      in
      List.fold_left (fun s p -> SMap.add p Plain s) s params
    in
    (* convert the body before touching [funs]: conversion itself pushes
       the functions it creates, and [a :: !funs] would read the tail
       first, losing them *)
    let body = conv body_scope body in
    funs := { fid; fname; params; free; body } :: !funs;
    incr clos_sites;
    Kclos (fid, List.map (fun x -> Anf.Avar x) free)
  in
  let entry = conv SMap.empty a in
  let table = Array.make !next None in
  List.iter (fun f -> table.(f.fid) <- Some f) !funs;
  let funs =
    Array.map
      (function Some f -> f | None -> internal "missing function body")
      table
  in
  let report =
    {
      functions = Array.length funs;
      known_call_sites = !known_calls;
      generic_app_sites = !generic;
      closure_sites = !clos_sites;
      max_env =
        Array.fold_left (fun m f -> max m (List.length f.free)) 0 funs;
    }
  in
  { funs; entry; report }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v 0>functions          %d@ known call sites   %d@ generic app sites  \
     %d@ closure sites      %d@ max environment    %d@]"
    r.functions r.known_call_sites r.generic_app_sites r.closure_sites r.max_env
