module A = Nml.Ast
module Ir = Runtime.Ir

type point = { label : string; mutant : Ir.expr Lazy.t }

type outcome = {
  points : int;
  draws : int;
  detected : int;
  survivors : string list;
}

(* pre-order enumeration and rewriting of nodes accepted by a matcher;
   the same traversal drives both, so indices are stable *)
let collect f ir =
  let acc = ref [] in
  let rec go e =
    (match f e with Some x -> acc := x :: !acc | None -> ());
    match e with
    | Ir.App (a, b) ->
        go a;
        go b
    | Ir.Lam (_, b) -> go b
    | Ir.If (c, t, f') ->
        go c;
        go t;
        go f'
    | Ir.Letrec (bs, b) ->
        List.iter (fun (_, r) -> go r) bs;
        go b
    | Ir.WithArena (_, _, b) -> go b
    | _ -> ()
  in
  go ir;
  List.rev !acc

let rewrite_nth f n ir =
  let k = ref (-1) in
  let rec go e =
    match f e with
    | Some e' ->
        incr k;
        if !k = n then e' else descend e
    | None -> descend e
  and descend e =
    (* explicit lets: constructor arguments evaluate right-to-left in
       OCaml, which would number sites in a different order than
       [collect] *)
    match e with
    | Ir.App (a, b) ->
        let a = go a in
        let b = go b in
        Ir.App (a, b)
    | Ir.Lam (x, b) -> Ir.Lam (x, go b)
    | Ir.If (c, t, f') ->
        let c = go c in
        let t = go t in
        let f' = go f' in
        Ir.If (c, t, f')
    | Ir.Letrec (bs, b) ->
        let bs = List.map (fun (x, r) -> (x, go r)) bs in
        let b = go b in
        Ir.Letrec (bs, b)
    | Ir.WithArena (kind, i, b) -> Ir.WithArena (kind, i, go b)
    | e -> e
  in
  go ir

let arena_site = function
  | Ir.ConsAt (Ir.Arena i) -> Some (`Cons, i)
  | Ir.NodeAt (Ir.Arena i) -> Some (`Node, i)
  | _ -> None

let dsite = function
  | Ir.App (Ir.App (Ir.App (Ir.Dcons, src), _), _) -> Some (`Dcons, src)
  | Ir.App (Ir.App (Ir.App (Ir.App (Ir.Dnode, src), _), _), _) ->
      Some (`Dnode, src)
  | _ -> None

let heap_site = function
  | Ir.App (Ir.App (Ir.Prim A.Cons, _), _) -> Some `Cons
  | Ir.App (Ir.App (Ir.App (Ir.Prim A.Node, _), _), _) -> Some `Node
  | _ -> None

let split = function Ir.Letrec (ds, m) -> (ds, m) | e -> ([], e)

let leading_params e =
  let rec go acc = function
    | Ir.Lam (x, b) -> go (x :: acc) b
    | b -> (List.rev acc, b)
  in
  go [] e

let points ~source ir =
  let mono_names =
    match Nml.Mono.run source with
    | m -> List.map fst m.Nml.Mono.program.Nml.Surface.defs
    | exception (Nml.Infer.Error _ | Nml.Mono.Too_many_instances) -> []
  in
  let ir_defs, _main = split ir in
  let def_names = List.map fst ir_defs in
  (* 1. retarget an allocation site to an arena nobody declares *)
  let sites = collect arena_site ir in
  let declared = collect (function Ir.WithArena (_, i, _) -> Some i | _ -> None) ir in
  let fresh =
    1 + List.fold_left max 0 (declared @ List.map snd sites)
  in
  let retargets =
    List.mapi
      (fun k (_, i) ->
        {
          label =
            Printf.sprintf "retarget: arena site %d moves from arena %d to \
                            undeclared arena %d"
              k i fresh;
          mutant =
            lazy
              (rewrite_nth
                 (function
                   | Ir.ConsAt (Ir.Arena _) -> Some (Ir.ConsAt (Ir.Arena fresh))
                   | Ir.NodeAt (Ir.Arena _) -> Some (Ir.NodeAt (Ir.Arena fresh))
                   | _ -> None)
                 k ir);
        })
      sites
  in
  (* 2. unwrap a delimiter whose arena still has allocation sites *)
  let wrappers = collect (function Ir.WithArena (_, i, _) -> Some i | _ -> None) ir in
  let unwraps =
    List.concat
      (List.mapi
         (fun k i ->
           (* only ids with a single delimiter: removing one of two
              same-id delimiters can leave every site covered *)
           if
             List.exists (fun (_, j) -> j = i) sites
             && List.length (List.filter (fun j -> j = i) wrappers) = 1
           then
             [
               {
                 label =
                   Printf.sprintf
                     "unwrap: delimiter %d of arena %d is removed, its sites \
                      remain"
                     k i;
                 mutant =
                   lazy
                     (rewrite_nth
                        (function Ir.WithArena (_, _, b) -> Some b | _ -> None)
                        k ir);
               };
             ]
           else [])
         wrappers)
  in
  (* per-definition context for source flips and injections, with each
     site's global pre-order index *)
  let offsets collect_f =
    let counter = ref 0 in
    List.map
      (fun (name, rhs) ->
        let local = collect collect_f rhs in
        let start = !counter in
        counter := !counter + List.length local;
        (name, start, local))
      ir_defs
  in
  (* 3. flip a destructive source to a parameter that is never guarded *)
  let never_tested prim q rhs =
    collect
      (function
        | Ir.App (Ir.Prim p, Ir.Var v) when p = prim && String.equal v q ->
            Some ()
        | _ -> None)
      rhs
    = []
  in
  let flips =
    List.concat_map
      (fun (name, start, local) ->
        let params, _ = leading_params (List.assoc name ir_defs) in
        List.concat
          (List.mapi
             (fun k (which, src) ->
               match src with
               | Ir.Var p ->
                   let test = match which with
                     | `Dcons -> A.Null
                     | `Dnode -> A.Isleaf
                   in
                   List.filter_map
                     (fun q ->
                       if
                         String.equal q p
                         || not (never_tested test q (List.assoc name ir_defs))
                       then None
                       else
                         Some
                           {
                             label =
                               Printf.sprintf
                                 "flip: destructive site %d in %s moves from \
                                  %s to unguarded %s"
                                 k name p q;
                             mutant =
                               lazy
                                 (rewrite_nth
                                    (function
                                      | Ir.App
                                          (Ir.App (Ir.App (Ir.Dcons, _), h), t)
                                        ->
                                          Some
                                            (Ir.App
                                               ( Ir.App
                                                   ( Ir.App
                                                       (Ir.Dcons, Ir.Var q),
                                                     h ),
                                                 t ))
                                      | Ir.App
                                          ( Ir.App
                                              (Ir.App (Ir.App (Ir.Dnode, _), l), x),
                                            r ) ->
                                          Some
                                            (Ir.App
                                               ( Ir.App
                                                   ( Ir.App
                                                       ( Ir.App
                                                           ( Ir.Dnode,
                                                             Ir.Var q ),
                                                         l ),
                                                     x ),
                                                 r ))
                                      | _ -> None)
                                    (start + k) ir);
                           })
                     params
               | _ -> [])
             local))
      (offsets dsite)
  in
  (* 4. inject a destructive site where nothing licenses one *)
  let injections =
    List.concat_map
      (fun (name, start, local) ->
        let rhs = List.assoc name ir_defs in
        let params, _ = leading_params rhs in
        let claimed_srcs =
          List.filter_map
            (fun (_, s) -> match s with Ir.Var p -> Some p | _ -> None)
            (collect dsite rhs)
        in
        let src =
          match claimed_srcs with
          | p :: _ -> Some p
          | [] ->
              if
                List.mem name mono_names
                && (not (List.mem (name ^ "'") def_names))
                && params <> []
              then Some (List.hd params)
              else None
        in
        match src with
        | None -> []
        | Some p ->
            List.mapi
              (fun k which ->
                {
                  label =
                    Printf.sprintf
                      "inject: heap %s site %d in %s becomes destructive on %s"
                      (match which with `Cons -> "cons" | `Node -> "node")
                      k name p;
                  mutant =
                    lazy
                      (rewrite_nth
                         (function
                           | Ir.App (Ir.App (Ir.Prim A.Cons, h), t) ->
                               Some
                                 (Ir.App
                                    ( Ir.App
                                        (Ir.App (Ir.Dcons, Ir.Var p), h),
                                      t ))
                           | Ir.App
                               (Ir.App (Ir.App (Ir.Prim A.Node, l), x), r) ->
                               Some
                                 (Ir.App
                                    ( Ir.App
                                        ( Ir.App
                                            (Ir.App (Ir.Dnode, Ir.Var p), l),
                                          x ),
                                      r ))
                           | _ -> None)
                         (start + k) ir);
                })
              local)
      (offsets heap_site)
  in
  (* 5. redirect a call of an original definition to its destructive
     variant, at a site where the consumed argument is a projection of
     the enclosing definition's own parameter: no freshness and no
     suffix claim can license that redirection *)
  let head_and_args e =
    let rec go acc = function
      | Ir.App (f, a) -> go (a :: acc) f
      | h -> (h, acc)
    in
    go [] e
  in
  let rec param_proj params = function
    | Ir.Var v -> List.mem v params
    | Ir.App (Ir.Prim (A.Car | A.Cdr | A.Label | A.Left | A.Right), e) ->
        param_proj params e
    | _ -> false
  in
  let index_of p l =
    let rec go i = function
      | [] -> None
      | x :: tl -> if String.equal x p then Some i else go (i + 1) tl
    in
    go 0 l
  in
  let call_site g arity e =
    match head_and_args e with
    | Ir.Var h, args when String.equal h g && List.length args = arity ->
        Some args
    | _ -> None
  in
  let redirect_targets =
    List.filter_map
      (fun (g, _) ->
        if not (List.mem g mono_names) then None
        else
          match List.assoc_opt (g ^ "'") ir_defs with
          | None -> None
          | Some prhs -> (
              let pparams, _ = leading_params prhs in
              match collect dsite prhs with
              | (_, Ir.Var p) :: _ ->
                  Option.map
                    (fun ix -> (g, List.length pparams, ix))
                    (index_of p pparams)
              | _ -> None))
      ir_defs
  in
  let redirects =
    List.concat_map
      (fun (g, arity, argix) ->
        List.concat_map
          (fun (name, start, local) ->
            let rhs = List.assoc name ir_defs in
            if collect dsite rhs <> [] then []
            else
              let params, _ = leading_params rhs in
              List.concat
                (List.mapi
                   (fun k args ->
                     if param_proj params (List.nth args argix) then
                       [
                         {
                           label =
                             Printf.sprintf
                               "redirect: call %d of %s in %s goes to %s'" k g
                               name g;
                           mutant =
                             lazy
                               (rewrite_nth
                                  (fun e ->
                                    match call_site g arity e with
                                    | Some args ->
                                        Some
                                          (List.fold_left
                                             (fun f a -> Ir.App (f, a))
                                             (Ir.Var (g ^ "'"))
                                             args)
                                    | None -> None)
                                  (start + k) ir);
                         };
                       ]
                     else [])
                   local))
          (offsets (call_site g arity)))
      redirect_targets
  in
  retargets @ unwraps @ flips @ injections @ redirects

let campaign ?(seed = 0) ~count ~source ir =
  let pts = points ~source ir in
  if pts = [] then { points = 0; draws = 0; detected = 0; survivors = [] }
  else begin
    let rng = Random.State.make [| seed |] in
    let detected = ref 0 and survivors = ref [] in
    for _ = 1 to count do
      let p = List.nth pts (Random.State.int rng (List.length pts)) in
      let ds, _ = Verify.audit ~source (Lazy.force p.mutant) in
      if Nml.Diagnostic.has_errors ds then incr detected
      else if not (List.mem p.label !survivors) then
        survivors := p.label :: !survivors
    done;
    {
      points = List.length pts;
      draws = count;
      detected = !detected;
      survivors = List.rev !survivors;
    }
  end
