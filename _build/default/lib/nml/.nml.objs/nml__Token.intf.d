lib/nml/token.mli: Format
