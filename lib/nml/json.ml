(* Hand-rolled JSON (emit + minimal parse): machine-checkable artifacts
   without new dependencies.  Moved here from bench/main.ml so the
   benchmark harness, the solver statistics and the diagnostics engine
   share one emitter. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool

let int i = Num (float_of_int i)

let member name = function Obj fs -> List.assoc_opt name fs | _ -> None

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit ?(indent = 0) b t =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match t with
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          add_string b k;
          Buffer.add_string b ": ";
          emit ~indent b v)
        fields;
      Buffer.add_string b "}"
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit ~indent:(indent + 2) b v)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Str s -> add_string b s
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.3f" f)
  | Bool bo -> Buffer.add_string b (if bo then "true" else "false")

let to_string t =
  let b = Buffer.create 1024 in
  emit b t;
  Buffer.add_char b '\n';
  Buffer.contents b

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              incr pos;
              go ()
          | Some c ->
              Buffer.add_char b c;
              incr pos;
              go ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let number () =
    let start = !pos in
    let numeric = function
      | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
        | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      fields []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems (v :: acc)
        | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v
