Signal handling: SIGINT/SIGTERM drain the batch pool and the server
cleanly — in-flight work finishes, summaries commit through the
atomic-rename path (no staging debris), and the exit is orderly.

  $ alias nmlc=../../bin/nmlc.exe
  $ N=../../bin/nmlc.exe

A corpus of six files, each artificially slowed to ~300 ms by the test
hook, so a signal reliably lands mid-batch.

  $ mkdir corpus
  $ for i in 1 2 3 4 5 6; do
  >   cat > corpus/p$i.nml <<'EOF'
  > letrec
  >   append x y = if null x then y else cons (car x) (append (cdr x) y)
  > in append [1] [2]
  > EOF
  > done

SIGINT half a second into a sequential batch: the file in flight
finishes, unstarted files are reported as interrupted, and the exit
code is 130.

  $ NMLC_TEST_SLOW_MS=300 timeout --preserve-status -s INT 0.5 \
  >   $N batch corpus --jobs 1 --cache cache > out.txt 2>&1; echo "rc=$?"
  rc=130
  $ grep -c 'interrupted' out.txt
  1

The interrupted run left no partial cache files: every summary either
committed atomically or was never written.

  $ find cache -name '*.tmp.*' | wc -l
  0

And what it did commit is valid: a warm rerun of the same corpus needs
no new evaluations for the files that finished.

  $ nmlc batch corpus --jobs 1 --cache cache | grep -o '6 file(s), 6 ok, 0 error(s)'
  6 file(s), 6 ok, 0 error(s)

SIGTERM likewise drains (here landing during the first file).

  $ NMLC_TEST_SLOW_MS=300 timeout --preserve-status -s TERM 0.2 \
  >   $N batch corpus --no-cache --jobs 1 >/dev/null 2>&1; echo "rc=$?"
  rc=130

A crashing file (injected through the pool-level test hook) costs only
its own slot: the rest of the corpus is analyzed, the failure is
reported per-file and in the summary, and the batch exits 124.

  $ NMLC_TEST_CRASH_FILE=p3.nml $N batch corpus --no-cache --jobs 2 \
  >   > crash.txt 2>&1; echo "rc=$?"
  rc=124
  $ grep -o 'injected crash on corpus/p3.nml' crash.txt | head -1
  injected crash on corpus/p3.nml
  $ grep -o 'failed: corpus/p3.nml' crash.txt
  failed: corpus/p3.nml
  $ grep -o '6 file(s), 5 ok' crash.txt
  6 file(s), 5 ok

The server drains on SIGTERM: the socket is unlinked, dirty summaries
are flushed, and the exit code is 0.

  $ nmlc serve --socket s.sock --cache servecache --jobs 1 2> serve.log &
  $ SRV=$!
  $ for i in $(seq 1 50); do [ -S s.sock ] && break; sleep 0.1; done
  $ nmlc serve --connect s.sock --call analyze --file corpus/p1.nml | grep -o '"code": 0'
  "code": 0
  $ kill -TERM $SRV
  $ wait $SRV; echo "rc=$?"
  rc=0
  $ [ -S s.sock ] && echo still-there || echo removed
  removed
  $ grep -o 'draining' serve.log
  draining
  $ grep -c 'drained' serve.log
  1
  $ find servecache -name '*.tmp.*' | wc -l
  0

A second server over the drained cache is warm from the flushed
summaries.

  $ nmlc serve --socket s.sock --cache servecache --jobs 1 --quiet 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 1 50); do [ -S s.sock ] && break; sleep 0.1; done
  $ nmlc serve --connect s.sock --call analyze --file corpus/p1.nml | grep -o '"evaluations": 0'
  "evaluations": 0
  $ nmlc serve --connect s.sock --call shutdown | grep -o 'stopping'
  stopping
  $ wait $SRV; echo "rc=$?"
  rc=0
