(** The analysis registry: every framework Spec the driver can run, by
    name.  All entries are cached through {!Cache.Engine} under their own
    key namespace, so a warm rerun of any analysis performs zero solver
    evaluations. *)

type outcome = {
  output : string;  (** rendered report, one block per definition *)
  defs : int;
  evaluations : int;  (** solver entry evaluations; [0] on a warm run *)
  scc_hits : int;
  scc_misses : int;
}

type entry = {
  name : string;  (** canonical name; also the cache-key namespace *)
  aliases : string list;  (** accepted alternative spellings *)
  domain : string;  (** one-line abstract-domain description *)
  doc : string;  (** one-line description of the question answered *)
  run : ?store:Cache.Store.t -> Nml.Infer.program -> outcome;
}

val all : entry list
val names : string list

val find : string -> entry option
(** Look up by canonical name or alias. *)

val batch_job : entry -> store:Cache.Store.t option -> string -> Cache.Batch.result
(** A per-file job with the batch-pool result shape, so any registered
    analysis distributes over [nmlc batch --jobs] like the escape
    default. *)

(** {2 Cache specs, exposed for the differential and cache tests} *)

val usage_spec : Framework.Usage.def_report Cache.Engine.spec
val spinelive_spec : Framework.Spinelive.def_report Cache.Engine.spec
val product_spec : Product.def_report Cache.Engine.spec
val alias_spec : Framework.Alias.def_report Cache.Engine.spec
