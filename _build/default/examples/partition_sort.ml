(* The paper's appendix, end to end: analysis of the partition sort
   program (A.1), the sharing consequences (A.2), and all three storage
   optimizations (A.3) executed on the simulator.

     dune exec examples/partition_sort.exe *)

module An = Escape.Analysis
module B = Escape.Besc

let paper_expectations =
  [
    ("append", [ "<1,0>"; "<1,1>" ]);
    ("split", [ "<0,0>"; "<1,0>"; "<1,1>"; "<1,1>" ]);
    ("ps", [ "<1,0>" ]);
  ]

let () =
  let src = Nml.Examples.partition_sort_program in
  Format.printf "--- Appendix A program ---@.%s@.@." src;
  let surface = Nml.Surface.of_string src in
  let t = Escape.Fixpoint.of_source src in

  (* A.1: global escape tests, checked against the paper's values *)
  Format.printf "--- A.1 global escape analysis (paper vs computed) ---@.";
  List.iter
    (fun (name, expected) ->
      let got = List.map (fun v -> B.to_string v.An.esc) (An.global_all t name) in
      List.iteri
        (fun i e ->
          let g = List.nth got i in
          Format.printf "G(%s, %d): paper %s  computed %s  %s@." name (i + 1) e g
            (if String.equal e g then "[ok]" else "[MISMATCH]"))
        expected)
    paper_expectations;
  Format.printf "(fixpoint: %d passes, %d iterations, d = %d)@.@." (Escape.Fixpoint.passes t)
    (Escape.Fixpoint.iterations t) (Escape.Fixpoint.d t);
  Format.printf "--- A.1 Kleene iterates ---@.%a@."
    (Escape.Report.kleene_trace ?max_iters:None)
    (Nml.Infer.infer_program surface);

  (* A.2: sharing *)
  Format.printf "--- A.2 sharing from escape information ---@.";
  List.iter
    (fun name ->
      let i = Escape.Sharing.result_unshared t name in
      Format.printf "%s: top %d of the result's %d spine(s) unshared@." name
        i.Escape.Sharing.unshared_top i.Escape.Sharing.result_spines)
    [ "ps"; "split" ];
  Format.printf "@.";

  (* A.3.2: in-place reuse — PS'', SPLIT', APPEND' *)
  Format.printf "--- A.3.2 in-place reuse (PS'', SPLIT', APPEND') ---@.";
  let reuse = Optimize.Transform.optimize ~options:{ Optimize.Transform.none with reuse = true } surface in
  Format.printf "%a@." Optimize.Transform.pp_report reuse;

  (* A.3.1 stack allocation of the literal's spine, A.3.3 block allocation
     for ps (create_list n) *)
  let block_src =
    Nml.Examples.wrap
      [
        Nml.Examples.append_def;
        Nml.Examples.split_def;
        Nml.Examples.ps_def;
        Nml.Examples.create_list_def;
      ]
      "ps (create_list 100)"
  in
  let block_surface = Nml.Surface.of_string block_src in
  let block =
    Optimize.Transform.optimize ~options:{ Optimize.Transform.none with block = true }
      block_surface
  in
  Format.printf "--- A.3.3 block allocation for ps (create_list 100) ---@.%a@."
    Optimize.Transform.pp_report block;

  (* run all variants *)
  let run ir =
    let m = Runtime.Machine.create ~heap_size:64 ~check_arenas:true () in
    let w = Runtime.Machine.eval m ir in
    (Runtime.Machine.read_value m w, Runtime.Machine.stats m)
  in
  Format.printf "--- execution ---@.";
  let show label (v, s) =
    Format.printf
      "%-22s heap %4d  arena %4d  reuse %4d  gc %2d  marked %5d  arena-freed %4d  %a@."
      label s.Runtime.Stats.heap_allocs s.Runtime.Stats.arena_allocs
      s.Runtime.Stats.dcons_reuses s.Runtime.Stats.gc_runs s.Runtime.Stats.marked
      s.Runtime.Stats.arena_freed Nml.Eval.pp_value v
  in
  show "ps baseline" (run (Runtime.Ir.of_program surface));
  show "ps with reuse" (run reuse.Optimize.Transform.ir);
  let v0, s0 = run (Runtime.Ir.of_program block_surface) in
  let v1, s1 = run block.Optimize.Transform.ir in
  Format.printf
    "%-22s heap %4d  arena %4d  reuse %4d  gc %2d  marked %5d  arena-freed %4d  (%d elements)@."
    "ps-create baseline" s0.Runtime.Stats.heap_allocs s0.Runtime.Stats.arena_allocs
    s0.Runtime.Stats.dcons_reuses s0.Runtime.Stats.gc_runs s0.Runtime.Stats.marked
    s0.Runtime.Stats.arena_freed
    (List.length (Nml.Eval.list_of_value v0));
  Format.printf
    "%-22s heap %4d  arena %4d  reuse %4d  gc %2d  marked %5d  arena-freed %4d  (%d elements)@."
    "ps-create block" s1.Runtime.Stats.heap_allocs s1.Runtime.Stats.arena_allocs
    s1.Runtime.Stats.dcons_reuses s1.Runtime.Stats.gc_runs s1.Runtime.Stats.marked
    s1.Runtime.Stats.arena_freed
    (List.length (Nml.Eval.list_of_value v1))
