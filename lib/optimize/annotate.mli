(** Shared call-site walker for the arena-based optimizations
    ({!Stackalloc} and {!Blockalloc} are views of this module).

    For every call [f e1 ... en] of a definition in the main expression
    it consults the local escape test once per argument and, depending on
    the enabled options:

    - redirects the spines of non-escaping {e literal} arguments into a
      region wrapped around the call (stack allocation);
    - redirects the result spine of a non-escaping {e producer call}
      argument into a block wrapped around the call, via a specialized
      block-allocating copy of the producer (block allocation);
    - with [~pretenure:true], retargets escape-doomed cons sites (literal
      spines the analysis proves escaping, and the result spine of main)
      to [Ir.Pretenured], so a generational heap tenures them at birth. *)

type stack_annotation = {
  func : string;
  arg : int;
  levels : int;
  arena : int;
  loc : Nml.Loc.t;  (** surface position of the annotated literal argument *)
}

type block_annotation = {
  consumer : string;
  producer : string;
  specialized : string;
  arena : int;
  loc : Nml.Loc.t;  (** surface position of the producer call argument *)
}

type report = {
  stack : stack_annotation list;
  block : block_annotation list;
  pretenure_sites : int;  (** cons sites retargeted to [Ir.Pretenured] *)
}

val annotate :
  stack:bool ->
  block:bool ->
  ?pretenure:bool ->
  Escape.Fixpoint.t ->
  Nml.Surface.t ->
  Runtime.Ir.expr * report
