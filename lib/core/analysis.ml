module Ty = Nml.Ty
module Tast = Nml.Tast
module Ast = Nml.Ast
module Infer = Nml.Infer

type verdict = {
  func : string;
  arg : int;
  arity : int;
  inst : Ty.t;
  spines : int;
  esc : Besc.t;
}

let escaping_spines v = Besc.spines v.esc
let escapes v = not (Besc.equal v.esc Besc.zero)
let non_escaping_top_spines v = max 0 (v.spines - escaping_spines v)

let check_arg ~what ~arg ~arity =
  if arg < 1 || arg > arity then
    invalid_arg
      (Printf.sprintf "Analysis.%s: argument position %d out of range 1..%d" what arg arity)

let global ?inst ?arity t fname ~arg =
  let inst = match inst with Some ty -> ty | None -> Fixpoint.instance_ty t fname in
  let arity = match arity with Some n -> n | None -> Ty.arity inst in
  check_arg ~what:"global" ~arg ~arity;
  Fixpoint.with_state t @@ fun () ->
  let arg_tys = Ty.arg_tys inst arity in
  let fval = Fixpoint.value t fname (Some inst) in
  let ys =
    List.mapi
      (fun j ty -> if j + 1 = arg then Wfun.interesting ty else Wfun.boring ty)
      arg_tys
  in
  let result = Dvalue.apply_all fval ys in
  {
    func = fname;
    arg;
    arity;
    inst;
    spines = Ty.spines (List.nth arg_tys (arg - 1));
    esc = Dvalue.total_esc result;
  }

let global_all ?inst t fname =
  let inst = match inst with Some ty -> ty | None -> Fixpoint.instance_ty t fname in
  let arity = Ty.arity inst in
  List.init arity (fun j -> global ~inst t fname ~arg:(j + 1))

(* Splits an application node into head and arguments. *)
let rec split_app acc (e : Tast.texpr) =
  match e.Tast.desc with
  | Tast.App (f, a) -> split_app (a :: acc) f
  | _ -> (e, acc)

let local_call t (call : Tast.texpr) ~arg =
  let head, args = split_app [] call in
  let fname =
    match head.Tast.desc with
    | Tast.Var f -> f
    | _ -> invalid_arg "Analysis.local_call: head of the call is not a named definition"
  in
  let arity = List.length args in
  check_arg ~what:"local_call" ~arg ~arity;
  let inst = head.Tast.ty in
  Fixpoint.with_state t @@ fun () ->
  let fval = Fixpoint.value t fname (Some inst) in
  let zs =
    List.mapi
      (fun j e ->
        let v = Fixpoint.eval_expr t e in
        if j + 1 = arg then Dvalue.mark_interesting v else Dvalue.mark_boring v)
      args
  in
  let result = Dvalue.apply_all fval zs in
  let interesting = List.nth args (arg - 1) in
  {
    func = fname;
    arg;
    arity;
    inst;
    spines = Ty.spines interesting.Tast.ty;
    esc = Dvalue.total_esc result;
  }

let rec component_paths ty =
  match Ty.shape ty with
  | Ty.Sprod (a, b) ->
      List.map (fun p -> Dvalue.Cfst :: p) (component_paths a)
      @ List.map (fun p -> Dvalue.Csnd :: p) (component_paths b)
  | Ty.Sbase | Ty.Sarrow _ -> [ [] ]

let rec component_ty path ty =
  match (path, Ty.shape ty) with
  | [], _ -> ty
  | Dvalue.Cfst :: rest, Ty.Sprod (a, _) -> component_ty rest a
  | Dvalue.Csnd :: rest, Ty.Sprod (_, b) -> component_ty rest b
  | _ :: _, (Ty.Sbase | Ty.Sarrow _) ->
      invalid_arg "Analysis.component_ty: path does not name a pair component"

let global_components ?inst t fname ~arg =
  let inst = match inst with Some ty -> ty | None -> Fixpoint.instance_ty t fname in
  let arity = Ty.arity inst in
  check_arg ~what:"global_components" ~arg ~arity;
  Fixpoint.with_state t @@ fun () ->
  let arg_tys = Ty.arg_tys inst arity in
  let arg_ty = List.nth arg_tys (arg - 1) in
  let fval = Fixpoint.value t fname (Some inst) in
  List.map
    (fun path ->
      let ys =
        List.mapi
          (fun j ty ->
            if j + 1 = arg then Dvalue.probe_component ~path ty else Wfun.boring ty)
          arg_tys
      in
      let result = Dvalue.apply_all fval ys in
      ( path,
        {
          func = fname;
          arg;
          arity;
          inst;
          spines = Ty.spines (component_ty path arg_ty);
          esc = Dvalue.total_esc result;
        } ))
    (component_paths arg_ty)

let pp_path ppf path =
  if path = [] then Format.pp_print_string ppf "(whole)"
  else
    List.iter
      (fun c ->
        Format.pp_print_string ppf
          (match c with Dvalue.Cfst -> ".fst" | Dvalue.Csnd -> ".snd"))
      path

let typed_call t fname args =
  let prog = Fixpoint.program t in
  let env =
    List.fold_left
      (fun acc (x, s) -> Infer.bind_scheme x s acc)
      Infer.empty_env prog.Infer.schemes
  in
  let call_ast = Ast.app (Ast.var fname) args in
  let tcall = Infer.infer_expr ~env call_ast in
  Tast.default_ground tcall;
  tcall

let local t fname args ~arg = local_call t (typed_call t fname args) ~arg

let local_all t fname args =
  let tcall = typed_call t fname args in
  List.init (List.length args) (fun j -> local_call t tcall ~arg:(j + 1))

let pp_verdict ppf v =
  let k = escaping_spines v in
  Format.fprintf ppf "@[G/L(%s, %d) = %a:" v.func v.arg Besc.pp v.esc;
  (if not (escapes v) then Format.fprintf ppf " no part of the argument escapes"
   else if v.spines = 0 then Format.fprintf ppf " the argument may escape"
   else
     Format.fprintf ppf " top %d of %d spine(s) do not escape; bottom %d may"
       (non_escaping_top_spines v) v.spines k);
  Format.fprintf ppf "@]"
