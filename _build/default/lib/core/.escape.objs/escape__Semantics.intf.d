lib/core/semantics.mli: Dvalue Map Nml
