lib/core/wfun.mli: Besc Dvalue Nml
