lib/core/besc.mli: Format
