type annotation = {
  consumer : string;
  producer : string;
  specialized : string;
  arena : int;
  loc : Nml.Loc.t;
}

type report = { annotations : annotation list }

let annotate t surface =
  let ir, r = Annotate.annotate ~stack:false ~block:true t surface in
  let annotations =
    List.map
      (fun (a : Annotate.block_annotation) ->
        {
          consumer = a.Annotate.consumer;
          producer = a.Annotate.producer;
          specialized = a.Annotate.specialized;
          arena = a.Annotate.arena;
          loc = a.Annotate.loc;
        })
      r.Annotate.block
  in
  (ir, { annotations })
