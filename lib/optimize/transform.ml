module Ir = Runtime.Ir
module Fix = Escape.Fixpoint

type options = {
  monomorphize : bool;
  reuse : bool;
  alias_reuse : bool;
  stack : bool;
  block : bool;
  pretenure : bool;
}

let all =
  {
    monomorphize = true;
    reuse = true;
    alias_reuse = true;
    stack = true;
    block = true;
    pretenure = false;
  }

let none =
  {
    monomorphize = false;
    reuse = false;
    alias_reuse = false;
    stack = false;
    block = false;
    pretenure = false;
  }

type result = {
  ir : Ir.expr;
  reuse_report : Reuse.report option;
  stack_report : Stackalloc.report option;
  block_report : Blockalloc.report option;
  pretenure_sites : int;
}

let add_defs prog extra =
  match (prog, extra) with
  | _, [] -> prog
  | Ir.Letrec (ds, m), _ -> Ir.Letrec (ds @ extra, m)
  | m, _ -> Ir.Letrec (extra, m)

let optimize_with t options (surface : Nml.Surface.t) =
  let primed, main', reuse_report =
    if options.reuse then
      let alias =
        (* the sharing solver runs over the same (monomorphized) program
           the escape solver saw; Reuse takes the max of both judgments *)
        if options.alias_reuse then
          Some (Framework.Alias.Solver.make (Nml.Infer.infer_program surface))
        else None
      in
      let p, m, r = Reuse.apply ?alias t surface in
      (p, m, Some r)
    else ([], surface.Nml.Surface.main, None)
  in
  let surface' = { surface with Nml.Surface.main = main' } in
  let ir, stack_report, block_report, pretenure_sites =
    if options.stack || options.block || options.pretenure then begin
      let ir, rep =
        Annotate.annotate ~stack:options.stack ~block:options.block
          ~pretenure:options.pretenure t surface'
      in
      let stack_report =
        if options.stack then
          Some
            {
              Stackalloc.annotations =
                List.map
                  (fun (a : Annotate.stack_annotation) ->
                    {
                      Stackalloc.func = a.Annotate.func;
                      arg = a.Annotate.arg;
                      levels = a.Annotate.levels;
                      arena = a.Annotate.arena;
                      loc = a.Annotate.loc;
                    })
                  rep.Annotate.stack;
            }
        else None
      in
      let block_report =
        if options.block then
          Some
            {
              Blockalloc.annotations =
                List.map
                  (fun (a : Annotate.block_annotation) ->
                    {
                      Blockalloc.consumer = a.Annotate.consumer;
                      producer = a.Annotate.producer;
                      specialized = a.Annotate.specialized;
                      arena = a.Annotate.arena;
                      loc = a.Annotate.loc;
                    })
                  rep.Annotate.block;
            }
        else None
      in
      (ir, stack_report, block_report, rep.Annotate.pretenure_sites)
    end
    else begin
      let defs_ir =
        List.map (fun (n, rhs) -> (n, Ir.of_ast rhs)) surface'.Nml.Surface.defs
      in
      let main_ir = Ir.of_ast surface'.Nml.Surface.main in
      let prog = match defs_ir with [] -> main_ir | ds -> Ir.Letrec (ds, main_ir) in
      (prog, None, None, 0)
    end
  in
  { ir = add_defs ir primed; reuse_report; stack_report; block_report; pretenure_sites }

let optimize ?(options = all) surface =
  let surface =
    if options.monomorphize then (Nml.Mono.run surface).Nml.Mono.program else surface
  in
  let t = Fix.make (Nml.Infer.infer_program surface) in
  optimize_with t options surface

let pp_report ppf r =
  Format.fprintf ppf "@[<v 0>";
  (match r.reuse_report with
  | Some rr ->
      List.iter
        (fun c ->
          Format.fprintf ppf "reuse: %s -> %s (parameter %s, %d site(s))@ "
            c.Reuse.def c.Reuse.primed c.Reuse.param
            (List.length c.Reuse.sites + List.length c.Reuse.node_sites))
        rr.Reuse.candidates;
      Format.fprintf ppf "reuse: %d call site(s) redirected@ " rr.Reuse.substituted_calls;
      if rr.Reuse.alias_licensed > 0 then
        Format.fprintf ppf "reuse: %d site(s) licensed by the sharing analysis alone@ "
          rr.Reuse.alias_licensed
  | None -> ());
  (match r.stack_report with
  | Some sr ->
      List.iter
        (fun (a : Stackalloc.annotation) ->
          Format.fprintf ppf
            "stack: argument %d of %s allocated in region %d (%d level(s))@ "
            a.Stackalloc.arg a.Stackalloc.func a.Stackalloc.arena a.Stackalloc.levels)
        sr.Stackalloc.annotations
  | None -> ());
  (match r.block_report with
  | Some br ->
      List.iter
        (fun (a : Blockalloc.annotation) ->
          Format.fprintf ppf "block: %s feeds %s via block %d (as %s)@ "
            a.Blockalloc.producer a.Blockalloc.consumer a.Blockalloc.arena
            a.Blockalloc.specialized)
        br.Blockalloc.annotations
  | None -> ());
  if r.pretenure_sites > 0 then
    Format.fprintf ppf "pretenure: %d cons site(s) tenured at birth@ "
      r.pretenure_sites;
  Format.fprintf ppf "@]"
