(* Shared random-program generators for the test suites.

   [gen_def] produces a structurally recursive definition
     f l = if null l then <base> else <step>
   over int lists, where <step> may use l, car l, cdr l and f (cdr l);
   recursion is only on (cdr l), so evaluation always terminates.
   Negative literals and compound leaves are parenthesized so that the
   generated text reparses as intended. *)

open QCheck.Gen

let lit = map (fun i -> Printf.sprintf "(%d)" i) small_signed_int

let rec gen_int n =
  if n <= 1 then frequency [ (2, lit); (2, return "(car l)") ]
  else
    frequency
      [
        (2, lit);
        (2, return "(car l)");
        ( 2,
          let* a = gen_int (n / 2) in
          let* b = gen_int (n / 2) in
          return (Printf.sprintf "(%s + %s)" a b) );
      ]

let gen_bool n =
  if n <= 1 then oneofl [ "true"; "false"; "(null (cdr l))" ]
  else
    let* a = gen_int (n / 2) in
    let* b = gen_int (n / 2) in
    oneofl
      [ "(null (cdr l))"; Printf.sprintf "(%s = %s)" a b; Printf.sprintf "(%s < %s)" a b ]

let rec gen_list n =
  if n <= 1 then oneofl [ "nil"; "l"; "(cdr l)"; "(f (cdr l))" ]
  else
    frequency
      [
        (1, oneofl [ "nil"; "l"; "(cdr l)"; "(f (cdr l))" ]);
        ( 3,
          let* hd = gen_int (n / 3) in
          let* tl = gen_list (n / 2) in
          return (Printf.sprintf "(cons %s %s)" hd tl) );
        ( 1,
          let* c = gen_bool (n / 3) in
          let* a = gen_list (n / 3) in
          let* b = gen_list (n / 3) in
          return (Printf.sprintf "(if %s then %s else %s)" c a b) );
      ]

let gen_base n =
  (* l is nil in the base branch: car l / cdr l would crash *)
  if n <= 1 then oneofl [ "nil"; "l" ]
  else
    let* x = lit in
    oneofl [ "nil"; "l"; Printf.sprintf "(cons %s nil)" x ]

let gen_def =
  let* nb = int_range 1 4 in
  let* ns = int_range 1 12 in
  let* base = gen_base nb in
  let* step = gen_list ns in
  return (Printf.sprintf "f l = if null l then %s else %s" base step)

let gen_input = list_size (int_range 0 6) small_signed_int

let input_src input = "[" ^ String.concat "," (List.map string_of_int input) ^ "]"

let gen_program =
  (* a complete program calling f on a literal *)
  let* def = gen_def in
  let* input = gen_input in
  return (Printf.sprintf "letrec %s in f %s" def (input_src input))

(* Random structurally recursive functions over (int * int) lists:
     f l = if null l then <base> else <step>
   exercising pair construction and projections. *)

let rec gen_pint n =
  if n <= 1 then
    frequency [ (2, lit); (1, return "(fst (car l))"); (1, return "(snd (car l))") ]
  else
    frequency
      [
        (2, lit);
        (1, return "(fst (car l))");
        (1, return "(snd (car l))");
        ( 2,
          let* a = gen_pint (n / 2) in
          let* b = gen_pint (n / 2) in
          return (Printf.sprintf "(%s + %s)" a b) );
      ]

let gen_pelem n =
  frequency
    [
      (2, return "(car l)");
      ( 2,
        let* a = gen_pint (n / 2) in
        let* b = gen_pint (n / 2) in
        return (Printf.sprintf "(mkpair %s %s)" a b) );
    ]

let gen_pbool n =
  if n <= 1 then oneofl [ "true"; "false"; "(null (cdr l))" ]
  else
    let* a = gen_pint (n / 2) in
    let* b = gen_pint (n / 2) in
    oneofl [ "(null (cdr l))"; Printf.sprintf "(%s = %s)" a b ]

let rec gen_plist n =
  if n <= 1 then oneofl [ "nil"; "l"; "(cdr l)"; "(f (cdr l))" ]
  else
    frequency
      [
        (1, oneofl [ "nil"; "l"; "(cdr l)"; "(f (cdr l))" ]);
        ( 3,
          let* hd = gen_pelem (n / 3) in
          let* tl = gen_plist (n / 2) in
          return (Printf.sprintf "(cons %s %s)" hd tl) );
        ( 1,
          let* c = gen_pbool (n / 3) in
          let* a = gen_plist (n / 3) in
          let* b = gen_plist (n / 3) in
          return (Printf.sprintf "(if %s then %s else %s)" c a b) );
      ]

let gen_pbase n =
  if n <= 1 then oneofl [ "nil"; "l" ]
  else
    let* x = lit in
    let* y = lit in
    oneofl [ "nil"; "l"; Printf.sprintf "(cons (mkpair %s %s) nil)" x y ]

let gen_pair_def =
  let* nb = int_range 1 4 in
  let* ns = int_range 1 12 in
  let* base = gen_pbase nb in
  let* step = gen_plist ns in
  return (Printf.sprintf "f l = if null l then %s else %s" base step)

let pair_input_src input =
  "["
  ^ String.concat ","
      (List.map (fun (a, b) -> Printf.sprintf "mkpair (%d) (%d)" a b) input)
  ^ "]"

let gen_pair_input = list_size (int_range 0 5) (pair small_signed_int small_signed_int)

(* Random structurally recursive functions over int trees:
     f t = if isleaf t then <base> else <step>
   with recursion on (left t)/(right t) only. *)

let rec gen_tint n =
  if n <= 1 then frequency [ (2, lit); (2, return "(label t)") ]
  else
    frequency
      [
        (2, lit);
        (2, return "(label t)");
        ( 2,
          let* a = gen_tint (n / 2) in
          let* b = gen_tint (n / 2) in
          return (Printf.sprintf "(%s + %s)" a b) );
      ]

let gen_tbool n =
  if n <= 1 then oneofl [ "true"; "false"; "(isleaf (left t))" ]
  else
    let* a = gen_tint (n / 2) in
    let* b = gen_tint (n / 2) in
    oneofl [ "(isleaf (left t))"; Printf.sprintf "(%s < %s)" a b ]

let rec gen_tree n =
  if n <= 1 then oneofl [ "leaf"; "t"; "(left t)"; "(right t)"; "(f (left t))"; "(f (right t))" ]
  else
    frequency
      [
        (1, oneofl [ "leaf"; "t"; "(left t)"; "(right t)"; "(f (left t))"; "(f (right t))" ]);
        ( 3,
          let* l = gen_tree (n / 3) in
          let* x = gen_tint (n / 3) in
          let* r = gen_tree (n / 3) in
          return (Printf.sprintf "(node %s %s %s)" l x r) );
        ( 1,
          let* c = gen_tbool (n / 3) in
          let* a = gen_tree (n / 3) in
          let* b = gen_tree (n / 3) in
          return (Printf.sprintf "(if %s then %s else %s)" c a b) );
      ]

let gen_tbase n =
  if n <= 1 then oneofl [ "leaf"; "t" ]
  else
    let* x = lit in
    oneofl [ "leaf"; "t"; Printf.sprintf "(node leaf %s leaf)" x ]

let gen_tree_def =
  let* nb = int_range 1 4 in
  let* ns = int_range 1 10 in
  let* base = gen_tbase nb in
  let* step = gen_tree ns in
  return (Printf.sprintf "f t = if isleaf t then %s else %s" base step)

(* a random bst-ish input built from tinsert chains *)
let tree_input_src input =
  List.fold_left (fun acc n -> Printf.sprintf "(node leaf (%d) %s)" n acc) "leaf" input

(* ---- complete programs over every shape the machine supports ------------- *)

let gen_pair_program =
  (* a complete program folding f over a literal (int * int) list *)
  let* def = gen_pair_def in
  let* input = gen_pair_input in
  return (Printf.sprintf "letrec %s in f %s" def (pair_input_src input))

let gen_tree_program =
  (* a complete program folding f over a literal left-spine int tree *)
  let* def = gen_tree_def in
  let* input = gen_input in
  return (Printf.sprintf "letrec %s in f %s" def (tree_input_src input))

let gen_any_program =
  (* the union the soundness harness draws from: int-list, pair-list and
     tree recursions, weighted towards the richer list programs *)
  frequency [ (2, gen_program); (1, gen_pair_program); (1, gen_tree_program) ]
