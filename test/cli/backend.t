The bytecode backend: nmlc run --backend vm, nmlc compile, and the
unified exit codes.

  $ alias nmlc=../../bin/nmlc.exe

The VM runs a shipped example with the same result and the same storage
counters as the interpreter (annotations honored natively):

  $ nmlc run ../../examples/programs/reverse.nml -O --backend vm > vm.out
  $ nmlc run ../../examples/programs/reverse.nml -O > interp.out
  $ cmp vm.out interp.out && cat vm.out
  optimized result: [8, 7, 6, 5, 4, 3, 2, 1]
  heap_allocs   8
  arena_allocs  0
  dcons_reuses  36
  gc_runs       0
  marked        0
  swept         0
  arena_freed   0
  heap_capacity 4096
  peak_live     8
  


The generational policy surfaces the dead-spine hint counters on both
backends:

  $ nmlc run -e 'letrec hd l = car l in hd [1, 2, 3]' --policy generational --backend vm | grep -E 'result|hint'
  baseline result: 1
  hint_sites    1
  hints_accepted 1

  $ nmlc run -e 'letrec hd l = car l in hd [1, 2, 3]' --policy generational | grep -E 'result|hint'
  baseline result: 1
  hint_sites    1
  hints_accepted 1

Resource exhaustion uses the same exit codes as the interpreter: 2 for
storage, 3 for fuel:

  $ nmlc run -e 'letrec build n = if n = 0 then nil else cons n (build (n - 1)) in build 100' --heap 8 --no-grow --backend vm
  error: out of memory: the cell store is exhausted even after a collection (raise --heap, or drop --no-grow)
  [2]

  $ nmlc run -e 'letrec loop n = loop (n + 1) in loop 0' --fuel 1000 --backend vm
  error: out of fuel: the step budget is exhausted (raise --fuel)
  [3]

A dynamic error in the program is exit 1, an internal error 124:

  $ nmlc run -e 'car nil' --backend vm
  runtime error: car of nil
  [1]

  $ NMLC_INTERNAL_ERROR=1 nmlc run -e '1 + 2' --backend vm
  nmlc: internal error: forced by NMLC_INTERNAL_ERROR
  [124]

nmlc compile reports the closure-conversion statistics by default:

  $ nmlc compile -e 'letrec add2 x y = x + y in add2 1 2'
  functions          1
  known call sites   1
  generic app sites  0
  closure sites      1
  max environment    0

--dump-anf prints the A-normal form (atoms only in operand position):

  $ nmlc compile -e 'letrec add2 x y = x + y in add2 1 2' --dump-anf
  letrec
    add2 = (fun x -> (fun y -> (+ x y)))
  in
  (add2 1 2)

--dump-bytecode disassembles: the letrec-bound nest becomes one flat
two-argument function, called directly at its known arity:

  $ nmlc compile -e 'letrec add2 x y = x + y in add2 1 2' --dump-bytecode
  entry (regs 2):
      0: r0 <- slot add2
      1: r1 <- closure f0 []
      2: r0.add2 := r1
      3: kill r1..
      4: r1 <- call f0 r0 (1 2)
      5: ret r1
  fn f0 add2/2 (env 0, regs 3):
      0: r2 <- + r0 r1
      1: ret r2
  functions          1
  known call sites   1
  generic app sites  0
  closure sites      1
  max environment    0

The optimizer's annotations survive into the bytecode: a self-recursive
reverse reuses its argument's spine cells in place (dcons), and the
recursive call is a direct tail call:

  $ nmlc compile -e 'letrec rev l a = if null l then a else rev (cdr l) (cons (car l) a) in rev [1, 2] nil' -O --dump-bytecode | grep -E 'dcons|tailcall'
      6: tailcall f0 e0 (r3 r5)
      5: r5 <- dcons! r0 r4 r1
      6: tailcall f1 e0 (r3 r5)
