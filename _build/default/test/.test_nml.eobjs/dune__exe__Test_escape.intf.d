test/test_escape.mli:
