type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

let make severity ?(notes = []) ~code loc message =
  { severity; code; loc; message; notes }

let error ?notes ~code loc message = make Error ?notes ~code loc message
let warning ?notes ~code loc message = make Warning ?notes ~code loc message

let errorf ?notes ~code loc fmt =
  Format.kasprintf (fun message -> error ?notes ~code loc message) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "note" -> Some Note
  | _ -> None

let compare a b =
  let pos d = (d.loc.Loc.file, d.loc.Loc.start_pos.Loc.line, d.loc.Loc.start_pos.Loc.col) in
  match Stdlib.compare (pos a) (pos b) with
  | 0 -> Stdlib.compare (a.code, a.message) (b.code, b.message)
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%a: %s[%s]: %s" Loc.pp d.loc (severity_name d.severity) d.code
    d.message;
  List.iter
    (fun (loc, note) ->
      Format.fprintf ppf "@.  note: %a: %s" Loc.pp loc note)
    d.notes

let pos_json p = Json.Obj [ ("line", Json.int p.Loc.line); ("col", Json.int p.Loc.col) ]

let loc_json (loc : Loc.t) =
  Json.Obj
    [
      ("file", Json.Str loc.Loc.file);
      ("start", pos_json loc.Loc.start_pos);
      ("end", pos_json loc.Loc.end_pos);
    ]

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_name d.severity));
      ("code", Json.Str d.code);
      ("loc", loc_json d.loc);
      ("message", Json.Str d.message);
      ( "notes",
        Json.Arr
          (List.map
             (fun (loc, note) ->
               Json.Obj [ ("loc", loc_json loc); ("message", Json.Str note) ])
             d.notes) );
    ]

(* Inverse of {!to_json}; [None] on any shape mismatch, so persisted
   diagnostics (the lint findings cache) can be replayed byte-identically
   or treated as a miss. *)
let of_json j =
  let ( let* ) = Option.bind in
  let str = function Json.Str s -> Some s | _ -> None in
  let num = function Json.Num f -> Some (int_of_float f) | _ -> None in
  let pos j =
    let* line = Option.bind (Json.member "line" j) num in
    let* col = Option.bind (Json.member "col" j) num in
    Some { Loc.line; col }
  in
  let loc j =
    let* file = Option.bind (Json.member "file" j) str in
    let* start_pos = Option.bind (Json.member "start" j) pos in
    let* end_pos = Option.bind (Json.member "end" j) pos in
    Some (Loc.make ~file ~start_pos ~end_pos)
  in
  let* severity =
    Option.bind (Option.bind (Json.member "severity" j) str) severity_of_name
  in
  let* code = Option.bind (Json.member "code" j) str in
  let* dloc = Option.bind (Json.member "loc" j) loc in
  let* message = Option.bind (Json.member "message" j) str in
  let* notes =
    match Json.member "notes" j with
    | Some (Json.Arr ns) ->
        List.fold_right
          (fun n acc ->
            let* acc = acc in
            let* nloc = Option.bind (Json.member "loc" n) loc in
            let* msg = Option.bind (Json.member "message" n) str in
            Some ((nloc, msg) :: acc))
          ns (Some [])
    | _ -> None
  in
  Some { severity; code; loc = dloc; message; notes }

(* ---- SARIF 2.1.0 ----------------------------------------------------------- *)

(* The minimal static-analysis interchange document: one run, one tool
   driver, one result per diagnostic.  Severities map one-to-one onto
   SARIF levels; secondary notes become relatedLocations.  Locations are
   1-based with an exclusive end column, exactly like {!Loc.t}. *)
let sarif_level = severity_name

let sarif_region (loc : Loc.t) =
  Json.Obj
    [
      ("startLine", Json.int loc.Loc.start_pos.Loc.line);
      ("startColumn", Json.int loc.Loc.start_pos.Loc.col);
      ("endLine", Json.int loc.Loc.end_pos.Loc.line);
      ("endColumn", Json.int loc.Loc.end_pos.Loc.col);
    ]

let sarif_location ?message loc =
  Json.Obj
    ((match message with
     | None -> []
     | Some m -> [ ("message", Json.Obj [ ("text", Json.Str m) ]) ])
    @ [
        ( "physicalLocation",
          Json.Obj
            [
              ("artifactLocation", Json.Obj [ ("uri", Json.Str loc.Loc.file) ]);
              ("region", sarif_region loc);
            ] );
      ])

let to_sarif ?(tool_name = "nmlc") ?(tool_version = "1.0.0") ?(rules = []) ds =
  let ds = List.sort compare ds in
  let result d =
    Json.Obj
      ([
         ("ruleId", Json.Str d.code);
         ("level", Json.Str (sarif_level d.severity));
         ("message", Json.Obj [ ("text", Json.Str d.message) ]);
         ("locations", Json.Arr [ sarif_location d.loc ]);
       ]
      @
      match d.notes with
      | [] -> []
      | notes ->
          [
            ( "relatedLocations",
              Json.Arr (List.map (fun (l, m) -> sarif_location ~message:m l) notes) );
          ])
  in
  let rules =
    (* explicit registry metadata when given, else the distinct codes *)
    if rules <> [] then rules
    else List.sort_uniq Stdlib.compare (List.map (fun d -> (d.code, "")) ds)
  in
  let rule_json (id, summary) =
    Json.Obj
      (("id", Json.Str id)
      ::
      (if summary = "" then []
       else [ ("shortDescription", Json.Obj [ ("text", Json.Str summary) ]) ]))
  in
  Json.Obj
    [
      ("$schema", Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.Arr
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str tool_name);
                            ("version", Json.Str tool_version);
                            ("rules", Json.Arr (List.map rule_json rules));
                          ] );
                    ] );
                ("results", Json.Arr (List.map result ds));
              ];
          ] );
    ]

type format = Human | Json | Sarif

let render format ppf ds =
  let ds = List.sort compare ds in
  match format with
  | Human -> List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds
  | Json ->
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "nmlc/diagnostics-v1");
            ("diagnostics", Json.Arr (List.map to_json ds));
          ]
      in
      Format.fprintf ppf "%s" (Json.to_string doc)
  | Sarif -> Format.fprintf ppf "%s" (Json.to_string (to_sarif ds))

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
