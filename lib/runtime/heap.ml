type policy = Legacy | Generational

type config = {
  policy : policy;
  regions : bool;
  pretenure : bool;
  nursery : int;
  liveness_hints : (string * int list) list;
      (* (definition, 1-based parameter indices) whose argument spine the
         callee provably never needs past the head — the spine-liveness
         analysis' Dead/Head_only verdicts.  Advisory: the policies
         reclaim identically with or without them (they never change the
         stats rows); a collector may use them to skip scavenging. *)
}

let legacy =
  { policy = Legacy; regions = true; pretenure = false; nursery = 0; liveness_hints = [] }

let generational =
  {
    policy = Generational;
    regions = true;
    pretenure = true;
    nursery = 1024;
    liveness_hints = [];
  }

let hinted_dead_spine c ~fname ~arg =
  match List.assoc_opt fname c.liveness_hints with
  | Some idxs -> List.mem arg idxs
  | None -> false

let config_name c =
  match c.policy with
  | Legacy -> if c.regions then "legacy" else "legacy/no-regions"
  | Generational ->
      Printf.sprintf "gen/nursery=%d%s%s" c.nursery
        (if c.regions then "" else "/no-regions")
        (if c.pretenure then "" else "/no-pretenure")

type 'w cell = {
  mutable car : 'w;
  mutable cdr : 'w;
  mutable lbl : 'w;
  mutable marked : bool;
  mutable free : bool;
  mutable arena : int;
  mutable old : bool;
  mutable link : int;
}

type 'w arena = {
  kind : Ir.arena_kind;
  dyn_id : int;
  mutable ahead : int;
  mutable acount : int;
}

type kind = Scalar | Ptr of int | Funval

type 'w t = {
  mutable cells : 'w cell array;
  mutable next : int;  (* bump pointer over never-used cells *)
  mutable free_head : int;  (* intrusive free list, -1 when empty *)
  mutable live : int;
  config : config;
  nil : 'w;
  scrub : 'w cell -> unit;
  kind_of : 'w -> kind;
  stats : Stats.t;
  mutable young_head : int;  (* intrusive nursery chain, -1 when empty *)
  mutable young : int;
  mutable next_dyn_arena : int;
  transient : (int, unit) Hashtbl.t;  (* cleared by every minor sweep *)
  sticky : (int, unit) Hashtbl.t;  (* scanned by every minor collection *)
}

let fresh_cell nil =
  {
    car = nil;
    cdr = nil;
    lbl = nil;
    marked = false;
    free = true;
    arena = -1;
    old = false;
    link = -1;
  }

let create ?(heap_size = 4096) ~config ~nil ~scrub ~kind_of ~stats () =
  stats.Stats.heap_capacity <- heap_size;
  stats.Stats.generational <- config.policy = Generational;
  {
    cells = Array.init (max 1 heap_size) (fun _ -> fresh_cell nil);
    next = 0;
    free_head = -1;
    live = 0;
    config;
    nil;
    scrub;
    kind_of;
    stats;
    young_head = -1;
    young = 0;
    next_dyn_arena = 0;
    transient = Hashtbl.create 64;
    sticky = Hashtbl.create 16;
  }

let get h a = h.cells.(a)
let capacity h = Array.length h.cells
let live h = h.live
let config h = h.config
let is_generational h = h.config.policy = Generational
let young_count h = h.young
let remembered_size h = Hashtbl.length h.transient + Hashtbl.length h.sticky

(* ---- allocation ---------------------------------------------------------- *)

type 'w where = Young | Old | In_arena of 'w arena

let take_free h =
  if h.free_head < 0 then None
  else begin
    let a = h.free_head in
    h.free_head <- h.cells.(a).link;
    Some a
  end

let bump h =
  if h.next < Array.length h.cells then begin
    let a = h.next in
    h.next <- h.next + 1;
    Some a
  end
  else None

let grow_store h =
  let old = h.cells in
  let cap = Array.length old in
  let bigger =
    Array.init (2 * cap) (fun i -> if i < cap then old.(i) else fresh_cell h.nil)
  in
  h.cells <- bigger;
  h.stats.Stats.heap_capacity <- 2 * cap

let register h addr where =
  let c = h.cells.(addr) in
  c.free <- false;
  (match where with
  | Young ->
      c.arena <- -1;
      if is_generational h then begin
        c.old <- false;
        c.link <- h.young_head;
        h.young_head <- addr;
        h.young <- h.young + 1
      end
      else begin
        (* legacy cells are born old: there is no younger generation *)
        c.old <- true;
        c.link <- -1
      end;
      h.stats.Stats.heap_allocs <- h.stats.Stats.heap_allocs + 1
  | Old ->
      c.arena <- -1;
      c.old <- true;
      c.link <- -1;
      h.stats.Stats.heap_allocs <- h.stats.Stats.heap_allocs + 1;
      h.stats.Stats.pretenured <- h.stats.Stats.pretenured + 1
  | In_arena ar ->
      c.arena <- ar.dyn_id;
      (* arena-resident data is old as far as the minor collector is
         concerned: pauses must not scale with region contents *)
      c.old <- true;
      c.link <- ar.ahead;
      ar.ahead <- addr;
      ar.acount <- ar.acount + 1;
      h.stats.Stats.arena_allocs <- h.stats.Stats.arena_allocs + 1);
  h.live <- h.live + 1;
  if h.live > h.stats.Stats.peak_live then h.stats.Stats.peak_live <- h.live

(* ---- remembered sets ----------------------------------------------------- *)

let remember_transient h a =
  if not (Hashtbl.mem h.transient a) then begin
    Hashtbl.replace h.transient a ();
    h.stats.Stats.remembered <- h.stats.Stats.remembered + 1
  end

let remember_sticky h a =
  if not (Hashtbl.mem h.sticky a) then begin
    Hashtbl.replace h.sticky a ();
    h.stats.Stats.remembered <- h.stats.Stats.remembered + 1
  end

let barrier h a =
  if is_generational h then begin
    let c = h.cells.(a) in
    if c.old then begin
      let child w =
        match h.kind_of w with
        | Scalar -> ()
        | Funval ->
            (* captured environments can acquire young references after
               this write (letrec slots fill in later): scan forever *)
            remember_sticky h a
        | Ptr b -> if not h.cells.(b).old then remember_transient h a
      in
      child c.car;
      child c.cdr;
      child c.lbl
    end
  end

let iter_remembered h f =
  Hashtbl.iter (fun a () -> f a) h.transient;
  Hashtbl.iter (fun a () -> if not (Hashtbl.mem h.transient a) then f a) h.sticky

let clear_transient h = Hashtbl.reset h.transient

(* ---- reclamation --------------------------------------------------------- *)

let free_cell h a ~reason =
  let c = h.cells.(a) in
  c.free <- true;
  c.arena <- -1;
  c.old <- false;
  h.scrub c;
  c.link <- h.free_head;
  h.free_head <- a;
  h.live <- h.live - 1;
  match reason with
  | `Swept -> h.stats.Stats.swept <- h.stats.Stats.swept + 1
  | `Arena -> h.stats.Stats.arena_freed <- h.stats.Stats.arena_freed + 1

let funval_child h c =
  let is w = match h.kind_of w with Funval -> true | Scalar | Ptr _ -> false in
  is c.car || is c.cdr || is c.lbl

let sweep_nursery h =
  let a = ref h.young_head in
  while !a >= 0 do
    let c = h.cells.(!a) in
    let next = c.link in
    if c.marked then begin
      c.marked <- false;
      c.old <- true;
      c.link <- -1;
      h.stats.Stats.promoted <- h.stats.Stats.promoted + 1;
      if funval_child h c then remember_sticky h !a
    end
    else free_cell h !a ~reason:`Swept;
    a := next
  done;
  h.young_head <- -1;
  h.young <- 0;
  (* sound to drop: every live young cell a remembered cell referenced
     was just marked through it, hence promoted *)
  clear_transient h

let sweep_all h =
  let gen = is_generational h in
  for a = 0 to h.next - 1 do
    let c = h.cells.(a) in
    if c.marked then begin
      c.marked <- false;
      if gen && not c.old then begin
        c.old <- true;
        c.link <- -1;
        h.stats.Stats.promoted <- h.stats.Stats.promoted + 1;
        if funval_child h c then remember_sticky h a
      end
    end
    else if (not c.free) && c.arena < 0 then free_cell h a ~reason:`Swept
  done;
  if gen then begin
    (* every survivor is old now: reset the nursery wholesale and keep
       only sticky entries that survived *)
    h.young_head <- -1;
    h.young <- 0;
    clear_transient h;
    let dead =
      Hashtbl.fold (fun a () acc -> if h.cells.(a).free then a :: acc else acc)
        h.sticky []
    in
    List.iter (Hashtbl.remove h.sticky) dead
  end

(* ---- arenas -------------------------------------------------------------- *)

let open_arena h ~kind =
  let dyn_id = h.next_dyn_arena in
  h.next_dyn_arena <- h.next_dyn_arena + 1;
  { kind; dyn_id; ahead = -1; acount = 0 }

let close_arena h ar =
  let freed = ref 0 in
  let a = ref ar.ahead in
  while !a >= 0 do
    let c = h.cells.(!a) in
    let next = c.link in
    if not c.free then begin
      free_cell h !a ~reason:`Arena;
      incr freed
    end;
    a := next
  done;
  ar.ahead <- -1;
  ar.acount <- 0;
  if !freed > 0 then
    h.stats.Stats.regions_reclaimed <- h.stats.Stats.regions_reclaimed + 1
