(** The exact escape semantics, realized dynamically (sections 3.2-3.3).

    The paper's exact escape semantics uses an oracle to choose the branch
    of every conditional; the oracle of an actual execution is the
    execution itself.  This module runs a call concretely under the
    standard semantics ({!Nml.Eval}) and {e observes} escapement: the
    cons cells of the interesting argument are identified physically
    (OCaml values give us the abstract machine's aliasing for free), the
    result — including environments captured inside returned closures —
    is traversed, and the deepest bottom spine of the argument found
    reachable from the result is reported.

    The safety theorem of section 3.5 then becomes an executable
    property, checked by the test suite on both hand-written and random
    programs:

    {v observe(call).esc  ⊑  L(f, i, args)  ⊑  G(f, i) v} *)

type observation = {
  esc : Besc.t;
      (** dynamic escapement: [<1,k>] if a cell of the argument's bottom
          [k]-th spine (or, for non-list arguments, the argument itself)
          is reachable from the result; [<0,0>] otherwise *)
  spines : int;  (** spine count [s_i] of the interesting argument *)
  escaped_cells : int;  (** how many of the argument's cells escaped *)
  total_cells : int;  (** how many cells the argument has *)
  trackable : bool;
      (** [false] when the argument is an immediate (int/bool) whose
          identity cannot be observed; [esc] is then [<0,0>] and the
          observation is vacuous *)
}

val observe_call :
  ?fuel:int -> Nml.Surface.t -> fname:string -> args:Nml.Ast.expr list -> arg:int -> observation
(** Evaluates the definitions of the program, evaluates the argument
    expressions, applies [fname] and observes what escaped.
    @raise Nml.Eval.Runtime_error / [Out_of_fuel] as the interpreter does.
    @raise Invalid_argument for unknown [fname] or bad [arg]. *)

val observe_value_call :
  ?fuel:int ->
  Nml.Surface.t ->
  fname:string ->
  args:Nml.Eval.value list ->
  arg:int ->
  spines:int ->
  observation
(** Like {!observe_call} on already evaluated arguments; [spines] is the
    spine count of the interesting argument's type. *)
