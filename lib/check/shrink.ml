(* Structural shrinking of nml programs, for minimizing soundness
   counterexamples.

   A candidate is obtained by one rewrite — replacing a node by one of
   its children, halving an integer literal, dropping a letrec binding,
   or collapsing a subtree to [nil]/[0] — and is kept only if the result
   still typechecks, so every candidate is a program the harness can
   meaningfully re-run.  Every rewrite strictly decreases either the AST
   size or the magnitude of a literal, so greedy minimization
   terminates. *)

module Ast = Nml.Ast

let rec shrinks (e : Ast.expr) : Ast.expr Seq.t =
  let open Ast in
  let sub rebuild child = Seq.map rebuild (shrinks child) in
  let self =
    match e with
    | Const (_, Cint n) when n <> 0 ->
        List.to_seq (int 0 :: (if n / 2 <> 0 then [ int (n / 2) ] else []))
    | Const _ | Var _ | Prim _ -> Seq.empty
    | App (_, f, a) -> List.to_seq [ f; a ]
    | Lam (_, _, b) -> List.to_seq [ b ]
    | If (_, _, t, f) -> List.to_seq [ t; f ]
    | Letrec (_, _, body) -> List.to_seq [ body ]
  in
  let children =
    match e with
    | Const _ | Var _ | Prim _ -> Seq.empty
    | App (l, f, a) ->
        Seq.append
          (sub (fun f' -> App (l, f', a)) f)
          (sub (fun a' -> App (l, f, a')) a)
    | Lam (l, x, b) -> sub (fun b' -> Lam (l, x, b')) b
    | If (l, c, t, f) ->
        Seq.append
          (sub (fun c' -> If (l, c', t, f)) c)
          (Seq.append
             (sub (fun t' -> If (l, c, t', f)) t)
             (sub (fun f' -> If (l, c, t, f')) f))
    | Letrec (l, bs, body) ->
        let drop_one =
          if List.length bs <= 1 then Seq.empty
          else
            Seq.init (List.length bs) (fun i ->
                Letrec (l, List.filteri (fun j _ -> j <> i) bs, body))
        in
        let in_rhs =
          Seq.concat
            (Seq.init (List.length bs) (fun i ->
                 let x, rhs = List.nth bs i in
                 sub
                   (fun rhs' ->
                     Letrec
                       (l, List.mapi (fun j b -> if j = i then (x, rhs') else b) bs, body))
                   rhs))
        in
        Seq.append drop_one (Seq.append in_rhs (sub (fun b' -> Letrec (l, bs, b')) body))
  in
  let leaves = if size e > 1 then List.to_seq [ nil; int 0 ] else Seq.empty in
  (* big jumps first so greedy minimization converges in few steps *)
  Seq.append self (Seq.append children leaves)

let typechecks src =
  match Nml.Infer.infer_program (Nml.Surface.of_string src) with
  | _ -> true
  | exception _ -> false

let candidates src =
  match Nml.Surface.of_string src with
  | exception _ -> []
  | s ->
      Nml.Surface.to_expr s |> shrinks
      |> Seq.map Nml.Pretty.to_string
      |> Seq.filter (fun s' -> (not (String.equal s' src)) && typechecks s')
      |> List.of_seq

let minimize ?(max_steps = 300) ~still_failing src =
  let rec go steps src =
    if steps >= max_steps then src
    else
      match List.find_opt still_failing (candidates src) with
      | Some smaller -> go (steps + 1) smaller
      | None -> src
  in
  go 0 src

let iter src yield = List.iter yield (candidates src)
