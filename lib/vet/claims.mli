(** Extraction of annotation {e claims} from an annotated program.

    Every storage annotation in the IR is an implicit claim that some
    proof obligation holds.  This module only finds and classifies the
    claims — {!Verify} discharges the obligations:

    - a [DCONS]/[DNODE] site claims its source is a consumable parameter
      of the enclosing definition (in-place reuse, section 6);
    - a [WithArena] delimiter claims that every cell allocated into its
      arena is dead when the delimiter is left (stack and block
      allocation, section 5). *)

type reuse_claim = {
  def : string;  (** IR definition holding the destructive sites *)
  base : string;  (** analyzed definition it derives from *)
  param : string;  (** consumed parameter *)
  arg : int;  (** 1-based position of [param] *)
  arity : int;  (** number of leading parameters of [def] *)
  cons_sites : int;  (** [DCONS] sites recycling [param] *)
  node_sites : int;  (** [DNODE] sites recycling [param] *)
}

type arena_claim = {
  owner : string option;  (** enclosing definition, [None] for main *)
  kind : Runtime.Ir.arena_kind;
  id : int;
  body : Runtime.Ir.expr;  (** what the delimiter wraps *)
}

val leading_params : Runtime.Ir.expr -> string list * Runtime.Ir.expr
(** Leading lambda binders of a definition body and what remains. *)

val head_and_args : Runtime.Ir.expr -> Runtime.Ir.expr * Runtime.Ir.expr list

val extract :
  loc_of_def:(string -> Nml.Loc.t) ->
  main_loc:Nml.Loc.t ->
  mono_names:string list ->
  (string * Runtime.Ir.expr) list ->
  Runtime.Ir.expr ->
  reuse_claim list * arena_claim list * Nml.Diagnostic.t list
(** [extract ~loc_of_def ~main_loc ~mono_names defs main] walks every
    definition body and the main expression; [main_loc] anchors
    diagnostics about claims found in the main expression.  Destructive sites whose source is not
    an unshadowed leading parameter ([VET010]), unsaturated destructive
    primitives ([VET017]) and claims over unknown definitions ([VET016])
    are reported immediately; well-formed claims come back grouped per
    (definition, parameter) in program order. *)
