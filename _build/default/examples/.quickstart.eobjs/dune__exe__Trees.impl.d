examples/trees.ml: Escape Format Nml Runtime
