(** The lint engine.

    Runs every registry rule over one program.  With a [store], findings
    are persisted per callgraph SCC under a key derived from the SCC's
    escape-summary key plus the members' names, spans and raw source
    slices (program-scoped rules use a whole-source key); a fully warm
    run therefore replays findings without evaluating a single fixpoint
    entry.  Records hold findings at default severities — configuration
    and suppression comments are applied at replay, so one record serves
    every flag combination.  Fault injection bypasses the store. *)

val schema_version : string
(** Digested into every record key; bump to invalidate wholesale. *)

type outcome = {
  findings : Nml.Diagnostic.t list;  (** kept, sorted for rendering *)
  suppressed : int;  (** dropped by [nmlc-disable] comments *)
  defs : int;  (** definitions in the program *)
  evaluations : int;  (** fixpoint entry evaluations (0 = fully warm) *)
  scc_hits : int;
  scc_misses : int;  (** both count the program-level record too *)
}

val run :
  ?config:Registry.config ->
  ?store:Cache.Store.t ->
  ?fault:Rule.fault ->
  file:string ->
  string ->
  outcome
(** [run ~file src] parses, infers, lints.
    @raise Nml.Lexer.Error, Nml.Parser.Error, Nml.Infer.Error as the
    toolchain normally does. *)
