type t = { defs : (string * Ast.expr) list; main : Ast.expr }

let of_expr = function
  | Ast.Letrec (_, defs, main) -> { defs; main }
  | e -> { defs = []; main = e }

let to_expr t =
  match t.defs with
  | [] -> t.main
  | _ -> Ast.Letrec (Ast.loc t.main, t.defs, t.main)

let of_string ?file src = of_expr (Parser.parse ?file src)
let def t name = List.assoc name t.defs
let names t = List.map fst t.defs
let pp ppf t = Pretty.pp ppf (to_expr t)
