(* The analysis registry: every Spec the framework can run, addressable
   by name from the CLI ([nmlc analyze --analysis NAME]), the batch
   driver and the serve daemon.  Each entry runs through
   {!Cache.Engine}, so every analysis inherits the per-SCC persistent
   cache under its own key namespace — a warm rerun of any analysis
   performs zero solver evaluations. *)

module J = Nml.Json
module Engine = Cache.Engine
module Usage = Framework.Usage
module Spinelive = Framework.Spinelive
module Alias = Framework.Alias

type outcome = {
  output : string;  (* rendered report, one block per definition *)
  defs : int;
  evaluations : int;
  scc_hits : int;
  scc_misses : int;
}

type entry = {
  name : string;  (* canonical registry / cache-namespace name *)
  aliases : string list;
  domain : string;  (* one-line abstract-domain description *)
  doc : string;  (* one-line "what question does it answer" *)
  run : ?store:Cache.Store.t -> Nml.Infer.program -> outcome;
}

(* ---- codec helpers ---------------------------------------------------------- *)

let fail = failwith
let str = function J.Str s -> s | _ -> fail "expected a string"
let num = function J.Num f -> int_of_float f | _ -> fail "expected a number"
let arr = function J.Arr xs -> xs | _ -> fail "expected an array"

let get field j =
  match J.member field j with Some v -> v | None -> fail ("missing field " ^ field)

let render pp summaries =
  Format.asprintf "@[<v 0>%a@]@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,") pp)
    summaries

let of_engine output (o : _ Engine.outcome) =
  {
    output;
    defs = List.length o.Engine.summaries;
    evaluations = o.Engine.evaluations;
    scc_hits = o.Engine.scc_hits;
    scc_misses = o.Engine.scc_misses;
  }

(* ---- escape ----------------------------------------------------------------- *)

let escape_run ?store prog =
  let o = Cache.Summary.analyze ?store prog in
  {
    output = Format.asprintf "%a" Escape.Report.pp_program_summaries o.Cache.Summary.summaries;
    defs = List.length o.Cache.Summary.summaries;
    evaluations = o.Cache.Summary.evaluations;
    scc_hits = o.Cache.Summary.scc_hits;
    scc_misses = o.Cache.Summary.scc_misses;
  }

(* ---- usage ------------------------------------------------------------------ *)

let usage_def_to_json (r : Usage.def_report) =
  J.Obj
    [
      ("name", J.Str r.Usage.r_name);
      ("inst", J.Str r.Usage.r_ty);
      ( "args",
        J.Arr
          (List.map
             (fun (a : Usage.arg_report) ->
               J.Arr [ J.int a.Usage.a_index; J.Str (Usage.verdict_name a.Usage.a_verdict) ])
             r.Usage.r_args) );
    ]

let usage_def_of_json j =
  {
    Usage.r_name = str (get "name" j);
    r_ty = str (get "inst" j);
    r_args =
      List.map
        (function
          | J.Arr [ i; v ] ->
              {
                Usage.a_index = num i;
                a_verdict =
                  (match Usage.verdict_of_name (str v) with
                  | Some v -> v
                  | None -> fail "bad usage verdict");
              }
          | _ -> fail "bad usage arg")
        (arr (get "args" j));
  }

let usage_spec : Usage.def_report Engine.spec =
  {
    Engine.analysis = "usage";
    def_name = (fun r -> r.Usage.r_name);
    to_json = usage_def_to_json;
    of_json = usage_def_of_json;
    session =
      (fun prog ->
        let t = Usage.Solver.make prog in
        {
          Engine.summarize = Usage.report t;
          evaluations = (fun () -> Usage.Solver.evaluations t);
        });
  }

let usage_run ?store prog =
  let o = Engine.analyze usage_spec ?store prog in
  of_engine (render Usage.pp_def_report o.Engine.summaries) o

(* ---- spine-liveness --------------------------------------------------------- *)

let spinelive_def_to_json (r : Spinelive.def_report) =
  J.Obj
    [
      ("name", J.Str r.Spinelive.r_name);
      ("inst", J.Str r.Spinelive.r_ty);
      ( "args",
        J.Arr
          (List.map
             (fun (a : Spinelive.arg_report) ->
               J.Arr
                 [
                   J.int a.Spinelive.a_index;
                   J.Str (Spinelive.verdict_name a.Spinelive.a_verdict);
                 ])
             r.Spinelive.r_args) );
    ]

let spinelive_def_of_json j =
  {
    Spinelive.r_name = str (get "name" j);
    r_ty = str (get "inst" j);
    r_args =
      List.map
        (function
          | J.Arr [ i; v ] ->
              {
                Spinelive.a_index = num i;
                a_verdict =
                  (match Spinelive.verdict_of_name (str v) with
                  | Some v -> v
                  | None -> fail "bad liveness verdict");
              }
          | _ -> fail "bad liveness arg")
        (arr (get "args" j));
  }

let spinelive_spec : Spinelive.def_report Engine.spec =
  {
    Engine.analysis = "spine-liveness";
    def_name = (fun r -> r.Spinelive.r_name);
    to_json = spinelive_def_to_json;
    of_json = spinelive_def_of_json;
    session =
      (fun prog ->
        let t = Spinelive.Solver.make prog in
        {
          Engine.summarize = Spinelive.report t;
          evaluations = (fun () -> Spinelive.Solver.evaluations t);
        });
  }

let spinelive_run ?store prog =
  let o = Engine.analyze spinelive_spec ?store prog in
  of_engine (render Spinelive.pp_def_report o.Engine.summaries) o

(* ---- sharing ---------------------------------------------------------------- *)

let alias_def_to_json (r : Alias.def_report) =
  J.Obj
    [
      ("name", J.Str r.Alias.r_name);
      ("inst", J.Str r.Alias.r_ty);
      ( "args",
        J.Arr
          (List.map
             (fun (a : Alias.arg_report) ->
               J.Arr [ J.int a.Alias.a_index; J.Str (Alias.verdict_name a.Alias.a_verdict) ])
             r.Alias.r_args) );
      ( "pairs",
        J.Arr (List.map (fun (i, j) -> J.Arr [ J.int i; J.int j ]) r.Alias.r_pairs) );
    ]

let alias_def_of_json j =
  {
    Alias.r_name = str (get "name" j);
    r_ty = str (get "inst" j);
    r_args =
      List.map
        (function
          | J.Arr [ i; v ] ->
              {
                Alias.a_index = num i;
                a_verdict =
                  (match Alias.verdict_of_name (str v) with
                  | Some v -> v
                  | None -> fail "bad sharing verdict");
              }
          | _ -> fail "bad sharing arg")
        (arr (get "args" j));
    r_pairs =
      List.map
        (function J.Arr [ i; j' ] -> (num i, num j') | _ -> fail "bad alias pair")
        (arr (get "pairs" j));
  }

let alias_spec : Alias.def_report Engine.spec =
  {
    Engine.analysis = "sharing";
    def_name = (fun r -> r.Alias.r_name);
    to_json = alias_def_to_json;
    of_json = alias_def_of_json;
    session =
      (fun prog ->
        let t = Alias.Solver.make prog in
        {
          Engine.summarize = Alias.report t;
          evaluations = (fun () -> Alias.Solver.evaluations t);
        });
  }

let alias_run ?store prog =
  let o = Engine.analyze alias_spec ?store prog in
  of_engine (render Alias.pp_def_report o.Engine.summaries) o

(* ---- escape × usage reduced product ----------------------------------------- *)

let besc_of_string s =
  match Scanf.sscanf_opt s "<%d,%d>" (fun a b -> (a, b)) with
  | Some (0, 0) -> Escape.Besc.zero
  | Some (1, k) when k >= 0 -> Escape.Besc.one k
  | _ -> fail ("bad escape value " ^ s)

let product_def_to_json (r : Product.def_report) =
  J.Obj
    [
      ("name", J.Str r.Product.r_name);
      ("inst", J.Str r.Product.r_ty);
      ( "args",
        J.Arr
          (List.map
             (fun (a : Product.arg_report) ->
               J.Obj
                 [
                   ("arg", J.int a.Product.a_index);
                   ("usage", J.Str (Usage.verdict_name a.Product.a_usage));
                   ("esc", J.Str (Escape.Besc.to_string a.Product.a_esc));
                   ("spines", J.int a.Product.a_spines);
                   ("verdict", J.Str (Product.verdict_name a.Product.a_verdict));
                 ])
             r.Product.r_args) );
    ]

let product_def_of_json j =
  let req of_name s =
    match of_name s with Some v -> v | None -> fail ("bad verdict " ^ s)
  in
  {
    Product.r_name = str (get "name" j);
    r_ty = str (get "inst" j);
    r_args =
      List.map
        (fun a ->
          {
            Product.a_index = num (get "arg" a);
            a_usage = req Usage.verdict_of_name (str (get "usage" a));
            a_esc = besc_of_string (str (get "esc" a));
            a_spines = num (get "spines" a);
            a_verdict = req Product.verdict_of_name (str (get "verdict" a));
          })
        (arr (get "args" j));
  }

let product_spec : Product.def_report Engine.spec =
  {
    Engine.analysis = "escape-x-usage";
    def_name = (fun r -> r.Product.r_name);
    to_json = product_def_to_json;
    of_json = product_def_of_json;
    session =
      (fun prog ->
        let t = Product.Solver.make prog in
        {
          Engine.summarize = Product.report t;
          evaluations = (fun () -> Product.Solver.evaluations t);
        });
  }

let product_run ?store prog =
  let o = Engine.analyze product_spec ?store prog in
  of_engine (render Product.pp_def_report o.Engine.summaries) o

(* ---- the registry ----------------------------------------------------------- *)

let all =
  [
    {
      name = "escape";
      aliases = [];
      domain = "B_e chains <e,s> over list spines (Park-Goldberg)";
      doc = "which bottom spines of each argument may escape into the result";
      run = escape_run;
    };
    {
      name = "usage";
      aliases = [ "strictness" ];
      domain = "dep x use bits per argument";
      doc = "is each argument inspected, retained, both, or neither";
      run = usage_run;
    };
    {
      name = "spine-liveness";
      aliases = [ "liveness" ];
      domain = "dep x head x tail bits per argument (Karkare-style)";
      doc = "which part of each argument's heap structure the callee needs";
      run = spinelive_run;
    };
    {
      name = "escape-x-usage";
      aliases = [ "product" ];
      domain = "reduced product of escape and usage";
      doc = "storage verdicts per argument: dead / scratch / spine-scratch / retained";
      run = product_run;
    };
    {
      name = "sharing";
      aliases = [ "alias" ];
      domain = "dep x spine sharing pairs per argument (Hill-Spoto-style)";
      doc = "may the result share cells (or its spine) with each argument";
      run = alias_run;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name =
  List.find_opt (fun e -> String.equal e.name name || List.mem name e.aliases) all

(* A per-file job with the {!Cache.Batch.result} shape, so any registered
   analysis rides the batch pool (and the serve daemon) exactly like the
   escape default does. *)
let batch_job e ~store path =
  Cache.Batch.protect path (fun () ->
      let src = In_channel.with_open_text path In_channel.input_all in
      let prog = Nml.Infer.infer_program (Nml.Surface.of_string ~file:path src) in
      let o = e.run ?store prog in
      {
        Cache.Batch.path;
        output = o.output;
        errors = "";
        code = 0;
        defs = o.defs;
        findings = 0;
        evaluations = o.evaluations;
        scc_hits = o.scc_hits;
        scc_misses = o.scc_misses;
      })
