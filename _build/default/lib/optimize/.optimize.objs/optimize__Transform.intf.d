lib/optimize/transform.mli: Blockalloc Escape Format Nml Reuse Runtime Stackalloc
