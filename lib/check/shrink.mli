(** Structural shrinking of [nml] programs (concrete syntax in, concrete
    syntax out), used to minimize soundness counterexamples.

    Candidates are single-rewrite simplifications — a node replaced by a
    child, an integer halved, a [letrec] binding dropped, a subtree
    collapsed to [nil] or [0] — filtered to those that still typecheck.
    Every rewrite strictly shrinks the program, so greedy minimization
    terminates. *)

val candidates : string -> string list
(** Simpler well-typed variants of a program, largest rewrites first.
    Empty if the input does not parse. *)

val minimize : ?max_steps:int -> still_failing:(string -> bool) -> string -> string
(** Greedily replaces the program by its first candidate on which
    [still_failing] holds, until none does (or [max_steps], default 300,
    is reached). *)

val iter : string -> (string -> unit) -> unit
(** {!candidates} as a [QCheck.Iter.t], for [QCheck.make ~shrink]. *)
