lib/nml/token.ml: Format
