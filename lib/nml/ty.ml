type t =
  | Int
  | Bool
  | List of t
  | Tree of t
  | Prod of t * t
  | Arrow of t * t
  | Var of var ref

and var = Unbound of int * int | Link of t

(* Atomic so that programs inferred concurrently in different domains
   (the batch driver) never mint duplicate variable ids: a torn
   read-modify-write on a plain ref could hand the same id to two
   variables of one program, conflating them under generalization. *)
let counter = Atomic.make 0
let fresh_var ~level = Var (ref (Unbound (Atomic.fetch_and_add counter 1 + 1, level)))

let rec repr t =
  match t with
  | Var ({ contents = Link u } as r) ->
      let v = repr u in
      r := Link v;
      v
  | _ -> t

let rec spines t =
  match repr t with List elt | Tree elt -> 1 + spines elt | _ -> 0

let rec max_list_depth t =
  match repr t with
  | Int | Bool | Var _ -> 0
  | (List elt | Tree elt) as l -> max (spines l) (max_list_depth elt)
  | Prod (a, b) | Arrow (a, b) -> max (max_list_depth a) (max_list_depth b)

let owns_cells t =
  match repr t with
  | Int | Bool -> false
  | List _ | Tree _ | Prod _ | Arrow _ | Var _ -> true

let rec arity t =
  match repr t with
  | Arrow (_, b) -> 1 + arity b
  | List elt | Tree elt -> arity elt
  | Int | Bool | Prod _ | Var _ -> 0

type shape = Sbase | Sarrow of t * t | Sprod of t * t

let rec shape t =
  match repr t with
  | Int | Bool | Var _ -> Sbase
  | List elt | Tree elt -> shape elt
  | Prod (a, b) -> Sprod (a, b)
  | Arrow (a, b) -> Sarrow (a, b)

let rec result_ty t n =
  if n = 0 then repr t
  else
    match repr t with
    | Arrow (_, b) -> result_ty b (n - 1)
    | other ->
        invalid_arg
          (Printf.sprintf "Ty.result_ty: %d more arguments requested of a non-arrow (%s)" n
             (match other with
             | Int -> "int"
             | Bool -> "bool"
             | List _ -> "list"
             | Tree _ -> "tree"
             | Prod _ -> "pair"
             | Var _ -> "tyvar"
             | Arrow _ -> assert false))

let rec arg_tys t n =
  if n = 0 then []
  else
    match repr t with
    | Arrow (a, b) -> a :: arg_tys b (n - 1)
    | _ -> invalid_arg "Ty.arg_tys: not enough arrows"

let rec equal a b =
  match (repr a, repr b) with
  | Int, Int | Bool, Bool -> true
  | List x, List y | Tree x, Tree y -> equal x y
  | Prod (a1, b1), Prod (a2, b2) | Arrow (a1, b1), Arrow (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Var r1, Var r2 -> r1 == r2
  | (Int | Bool | List _ | Tree _ | Prod _ | Arrow _ | Var _), _ -> false

let rec contains_var t =
  match repr t with
  | Int | Bool -> false
  | Var _ -> true
  | List e | Tree e -> contains_var e
  | Prod (a, b) | Arrow (a, b) -> contains_var a || contains_var b

let pp ppf t =
  let names = Hashtbl.create 8 in
  let next = ref 0 in
  let name_of id =
    match Hashtbl.find_opt names id with
    | Some n -> n
    | None ->
        let n =
          if !next < 26 then Printf.sprintf "'%c" (Char.chr (Char.code 'a' + !next))
          else Printf.sprintf "'t%d" !next
        in
        incr next;
        Hashtbl.add names id n;
        n
  in
  (* precedence: 0 arrow, 1 product, 2 list argument / atom *)
  let rec go prec ppf t =
    match repr t with
    | Int -> Format.pp_print_string ppf "int"
    | Bool -> Format.pp_print_string ppf "bool"
    | Var { contents = Unbound (id, _) } -> Format.pp_print_string ppf (name_of id)
    | Var { contents = Link _ } -> assert false
    | List elt ->
        if prec > 2 then Format.fprintf ppf "(%a list)" (go 2) elt
        else Format.fprintf ppf "%a list" (go 2) elt
    | Tree elt ->
        if prec > 2 then Format.fprintf ppf "(%a tree)" (go 2) elt
        else Format.fprintf ppf "%a tree" (go 2) elt
    | Prod (a, b) ->
        if prec > 1 then Format.fprintf ppf "(%a * %a)" (go 2) a (go 2) b
        else Format.fprintf ppf "%a * %a" (go 2) a (go 2) b
    | Arrow (a, b) ->
        if prec > 0 then Format.fprintf ppf "(%a -> %a)" (go 1) a (go 0) b
        else Format.fprintf ppf "%a -> %a" (go 1) a (go 0) b
  in
  go 0 ppf t

let to_string t = Format.asprintf "%a" pp t
