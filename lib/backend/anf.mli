(** A-normal form over the annotated storage IR: every intermediate
    value is named, primitives are saturated, and the optimizer's
    storage annotations ([ConsAt]/[NodeAt]/[Dcons]/[Dnode]/[WithArena])
    survive as first-class allocation and reuse forms the bytecode
    backend honors natively. *)

type atom = Aconst of Nml.Ast.const | Avar of string

type shape = Scons | Spair | Snode
type reuse = Rcons | Rnode

type cexpr =
  | Catom of atom
  | Cprim of Nml.Ast.prim * atom list
      (** saturated non-allocating primitive *)
  | Calloc of Runtime.Ir.alloc * shape * atom list
      (** cons/pair/node, carrying its allocation target *)
  | Creuse of reuse * atom list  (** DCONS/DNODE in-place reuse *)
  | Capp of atom * atom list
      (** one argument, or a flat call of a letrec-bound nest at its
          exact arity (see {!verify}) *)
  | Cif of atom * anf * anf
  | Clam of string * anf
  | Carena of Runtime.Ir.arena_kind * int * anf
  | Cblock of anf  (** scoped sub-computation (letrec in operand position) *)

and anf =
  | Alet of string * cexpr * anf
  | Aletrec of (string * anf) list * anf
  | Aret of cexpr

val shape_arity : shape -> int
val reuse_arity : reuse -> int

val lower : Runtime.Ir.expr -> anf
(** Lower an (optionally optimizer-annotated) IR expression.  The
    result satisfies {!verify}; the machine's curried evaluation order
    is preserved exactly, flattening argument evaluation only where no
    closure body can run in between. *)

val verify : anf -> (unit, string) result
(** Check the ANF invariants: closed scoping, saturated primitives and
    constructors, non-empty well-formed letrecs, and grouped calls only
    at a known nest's exact arity. *)

val free_vars : anf -> Set.Make(String).t

val fv_anf : anf -> Set.Make(String).t
(** Alias of {!free_vars}. *)

val is_eta_param : string -> bool
(** Binders spelled [$pN] are lowering-introduced eta parameters; user
    identifiers cannot contain ['$']. *)

val rhs_arity : anf -> int
(** Depth of the outer [Aret]/[Clam] nest: [0] for a non-function
    right-hand side, the uncurried arity otherwise.  Eta lambdas
    appended after a user lambda do not count: the nest boundary is the
    source arity calls were grouped at. *)

val shape_name : shape -> string
val reuse_name : reuse -> string

val pp : Format.formatter -> anf -> unit
val pp_cexpr : Format.formatter -> cexpr -> unit
val pp_atom : Format.formatter -> atom -> unit
