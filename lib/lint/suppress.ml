(* Inline suppression comments.

     (* nmlc-disable *)                   every rule
     (* nmlc-disable LINT001 *)           one rule
     (* nmlc-disable LINT001, LINT005 *)  several

   A directive suppresses findings that start on the comment's own
   starting line (trailing position) or on the line right after the
   comment ends (preceding position).  Directives are recognized in
   block comments only, via Nml.Lexer.comments, so they obey the
   language's own comment nesting. *)

module D = Nml.Diagnostic

type entry = { start_line : int; end_line : int; codes : string list }

let parse_body text =
  let text = String.trim text in
  let key = "nmlc-disable" in
  let klen = String.length key in
  if String.length text < klen || String.sub text 0 klen <> key then None
  else if String.length text > klen && not (String.contains " \t\n," text.[klen])
  then None
  else
    let rest = String.sub text klen (String.length text - klen) in
    let codes =
      String.split_on_char ',' rest
      |> List.concat_map (String.split_on_char ' ')
      |> List.concat_map (String.split_on_char '\t')
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some (String.uppercase_ascii s))
    in
    Some codes

let scan ?file src =
  Nml.Lexer.comments ?file src
  |> List.filter_map (fun ((loc : Nml.Loc.t), text) ->
         match parse_body text with
         | None -> None
         | Some codes ->
             Some
               {
                 start_line = loc.Nml.Loc.start_pos.Nml.Loc.line;
                 end_line = loc.Nml.Loc.end_pos.Nml.Loc.line;
                 codes;
               })

let matches entry (d : D.t) =
  let line = d.D.loc.Nml.Loc.start_pos.Nml.Loc.line in
  (line = entry.start_line || line = entry.end_line + 1)
  && (entry.codes = [] || List.mem d.D.code entry.codes)

let apply entries ds =
  let active, suppressed =
    List.partition (fun d -> not (List.exists (fun e -> matches e d) entries)) ds
  in
  (active, List.length suppressed)
