(** Worst-case escape functions [W^t] (Definition 2).

    [W^t] corresponds to an [nml] function from which every argument
    escapes:

    {v W = λx1. ⟨x1', λx2. ⟨x1' ⊔ x2', ..., λxm. ⟨x1' ⊔ ... ⊔ xm', err⟩⟩⟩ v}

    (writing [x'] for the basic component of [x]), where [m] is the number
    of arguments a function of type [t] takes before returning a primitive
    value, and [W^{t list} = W^t].  For [m = 0], [W = err].

    The global escape test instantiates every parameter with
    [⟨esc, W⟩] — the interesting one with [esc = <1,s_i>], the others with
    [<0,0>] (section 4.1). *)

val value : esc:Besc.t -> Nml.Ty.t -> Dvalue.t
(** The probe value [⟨esc, W^t⟩]. *)

val interesting : Nml.Ty.t -> Dvalue.t
(** [value ~esc:(One (spines t)) t] — the paper's [y_i]. *)

val boring : Nml.Ty.t -> Dvalue.t
(** [value ~esc:Zero t] — the paper's [y_j], [j <> i]. *)
