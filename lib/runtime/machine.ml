module Ast = Nml.Ast
module Env = Map.Make (String)
module H = Heap

type word =
  | Wint of int
  | Wbool of bool
  | Wnil
  | Wptr of int
  | Wpair of int
  | Wleaf
  | Wtree of int  (** address of a tree node: car=left, cdr=right, lbl=label *)
  | Wclos of closure
  | Wprim of Ast.prim * word list
  | Wcons_at of Ir.alloc * word list
  | Wnode_at of Ir.alloc * word list
  | Wdcons of word list
  | Wdnode of word list

and closure = {
  param : string;
  body : Ir.expr;
  cenv : env;
  mutable cmark : bool;
  mutable hints : int list;
      (** 1-based parameters the spine-liveness analysis proved dead;
          tagged when a letrec binding with advisory hints is filled *)
}
and env = binding Env.t
and binding = Ready of word | Slot of word option ref

type chaos = {
  gc_period : int;
      (** >0: force a collection at pseudo-random allocation points, on
          average one every [gc_period] allocations; 0 disables *)
  poison : bool;
      (** scribble over freed cells and fail any read through a dangling
          pointer, so an unsound escape verdict crashes deterministically *)
  chaos_seed : int;  (** seed of the deterministic fault-injection PRNG *)
}

type t = {
  heap : word H.t;
  grow : bool;
  check_arenas : bool;
  stats : Stats.t;
  mutable shadow : word list;  (** explicit GC root stack *)
  mutable env_stack : env list;  (** environments of active frames *)
  arena_stacks : (int, word H.arena list) Hashtbl.t;
      (** static id -> dynamic arenas *)
  mutable marked_closures : closure list;
  mutable fuel : int;  (** -1 = unlimited *)
  chaos : chaos;
  mutable rng : int;  (** fault-injection PRNG state *)
}

exception Error of string
exception Out_of_memory
exception Out_of_fuel

let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt
let no_chaos = { gc_period = 0; poison = false; chaos_seed = 0 }

let poison_word = Wint 0x7EADBEEF
(** scribbled into freed cells under [chaos.poison]: a dangling read that
    slips past the barriers yields this recognizable junk instead of a
    plausible [Wnil] *)

let create ?(heap_size = 4096) ?(grow = true) ?(check_arenas = false) ?fuel
    ?(chaos = no_chaos) ?(config = H.legacy) () =
  let stats = Stats.create () in
  (* scrub a cell as it is freed; poisoning makes any later read through
     a stale pointer junk instead of a believable empty cell *)
  let scrub (c : word H.cell) =
    if chaos.poison then begin
      c.H.car <- poison_word;
      c.H.cdr <- poison_word;
      c.H.lbl <- poison_word;
      stats.Stats.poisoned <- stats.Stats.poisoned + 1
    end
    else begin
      c.H.car <- Wnil;
      c.H.cdr <- Wnil;
      c.H.lbl <- Wnil
    end
  in
  let kind_of = function
    | Wint _ | Wbool _ | Wnil | Wleaf -> H.Scalar
    | Wptr a | Wpair a | Wtree a -> H.Ptr a
    | Wprim (_, []) | Wcons_at (_, []) | Wnode_at (_, []) | Wdcons []
    | Wdnode [] ->
        H.Scalar
    | Wclos _ | Wprim _ | Wcons_at _ | Wnode_at _ | Wdcons _ | Wdnode _ ->
        H.Funval
  in
  {
    heap = H.create ~heap_size ~config ~nil:Wnil ~scrub ~kind_of ~stats ();
    grow;
    check_arenas;
    stats;
    shadow = [];
    env_stack = [];
    arena_stacks = Hashtbl.create 8;
    marked_closures = [];
    fuel = (match fuel with Some f -> f | None -> -1);
    chaos;
    rng = chaos.chaos_seed lxor 0x2545F4914F6CDD1D;
  }

let stats t = t.stats
let live_cells t = H.live t.heap
let config t = H.config t.heap

let tick m =
  m.stats.Stats.steps <- m.stats.Stats.steps + 1;
  if m.fuel = 0 then raise Out_of_fuel;
  if m.fuel > 0 then m.fuel <- m.fuel - 1

let push m w = m.shadow <- w :: m.shadow
let pop m = m.shadow <- List.tl m.shadow

(* the 48-bit LCG of java.util.Random; the low bits are weak, so draws
   use the high 32 *)
let chaos_draw m =
  m.rng <- ((m.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  m.rng lsr 16

(* a cell read through [car]/[cdr]/[fst]/[snd]/[label]/[left]/[right];
   under poisoning a read of a freed cell is a deterministic crash *)
let cell_read m what a =
  let c = H.get m.heap a in
  if m.chaos.poison && c.H.free then
    error "chaos poison: %s reads cell %d after it was freed (use after free)" what a;
  c

(* ---- garbage collection ------------------------------------------------ *)

(* one marker for both collection kinds: a minor collection
   ([stop_old:true]) treats old and arena-resident cells as roots-of-
   nothing — it never traverses them, so its pause is proportional to
   the young survivors, not the live set *)
let rec mark_with m ~stop_old w =
  match w with
  | Wint _ | Wbool _ | Wnil | Wleaf -> ()
  | Wptr a | Wpair a | Wtree a ->
      let c = H.get m.heap a in
      if m.chaos.poison && c.H.free then
        error "chaos poison: the collector reached freed cell %d from a live root" a;
      if (not (stop_old && c.H.old)) && not c.H.marked then begin
        c.H.marked <- true;
        m.stats.Stats.marked <- m.stats.Stats.marked + 1;
        mark_with m ~stop_old c.H.car;
        mark_with m ~stop_old c.H.cdr;
        mark_with m ~stop_old c.H.lbl
      end
  | Wclos c ->
      if not c.cmark then begin
        c.cmark <- true;
        m.marked_closures <- c :: m.marked_closures;
        mark_env m ~stop_old c.cenv
      end
  | Wprim (_, args) | Wcons_at (_, args) | Wnode_at (_, args) | Wdcons args
  | Wdnode args ->
      List.iter (mark_with m ~stop_old) args

and mark_env m ~stop_old env =
  Env.iter
    (fun _ b ->
      match b with
      | Ready w -> mark_with m ~stop_old w
      | Slot { contents = Some w } -> mark_with m ~stop_old w
      | Slot { contents = None } -> ())
    env

let unmark_closures m =
  List.iter (fun c -> c.cmark <- false) m.marked_closures;
  m.marked_closures <- []

let now_ns () = Unix.gettimeofday () *. 1e9

(* a full mark-sweep; under the generational policy this is the major
   collection, promoting every survivor *)
let collect m =
  let t0 = now_ns () in
  let marked0 = m.stats.Stats.marked and swept0 = m.stats.Stats.swept in
  m.stats.Stats.gc_runs <- m.stats.Stats.gc_runs + 1;
  if H.is_generational m.heap then
    m.stats.Stats.major_gcs <- m.stats.Stats.major_gcs + 1;
  List.iter (mark_with m ~stop_old:false) m.shadow;
  List.iter (mark_env m ~stop_old:false) m.env_stack;
  H.sweep_all m.heap;
  unmark_closures m;
  let cells =
    m.stats.Stats.marked - marked0 + (m.stats.Stats.swept - swept0)
  in
  Stats.record_pause m.stats ~cells ~ns:(now_ns () -. t0)

(* a nursery collection: mark from the roots stopping at old cells, scan
   the remembered sets for old-to-young edges, sweep only the nursery
   chain, promote the survivors *)
let minor_collect m =
  let t0 = now_ns () in
  let marked0 = m.stats.Stats.marked and swept0 = m.stats.Stats.swept in
  let scanned = H.remembered_size m.heap in
  m.stats.Stats.gc_runs <- m.stats.Stats.gc_runs + 1;
  m.stats.Stats.minor_gcs <- m.stats.Stats.minor_gcs + 1;
  List.iter (mark_with m ~stop_old:true) m.shadow;
  List.iter (mark_env m ~stop_old:true) m.env_stack;
  H.iter_remembered m.heap (fun a ->
      let c = H.get m.heap a in
      if not c.H.free then begin
        mark_with m ~stop_old:true c.H.car;
        mark_with m ~stop_old:true c.H.cdr;
        mark_with m ~stop_old:true c.H.lbl
      end);
  H.sweep_nursery m.heap;
  unmark_closures m;
  let cells =
    m.stats.Stats.marked - marked0 + (m.stats.Stats.swept - swept0) + scanned
  in
  Stats.record_pause m.stats ~cells ~ns:(now_ns () -. t0)

let collect_minor m = if H.is_generational m.heap then minor_collect m else collect m

(* ---- allocation --------------------------------------------------------- *)

let current_arena m = function
  | Ir.Heap | Ir.Pretenured -> None
  | Ir.Arena sid -> (
      match Hashtbl.find_opt m.arena_stacks sid with
      | Some (a :: _) -> Some a
      | Some [] | None -> error "cons targets arena %d, but no such arena is open" sid)

let alloc_cell m target hd tl =
  let h = m.heap in
  let cfg = H.config h in
  let gen = H.is_generational h in
  (* gc chaos: force a collection at pseudo-random allocation points, so
     any value the evaluator failed to root is swept out from under it;
     generational runs force mostly minor collections, with an
     occasional major, so both paths see mid-region interruptions *)
  if m.chaos.gc_period > 0 && chaos_draw m mod m.chaos.gc_period = 0 then begin
    m.stats.Stats.chaos_gcs <- m.stats.Stats.chaos_gcs + 1;
    if gen && chaos_draw m mod 4 <> 0 then minor_collect m else collect m
  end;
  let arena = if cfg.H.regions then current_arena m target else None in
  let where =
    match target with
    | Ir.Pretenured when gen && cfg.H.pretenure && arena = None -> H.Old
    | _ -> H.Young
  in
  (* the nursery threshold: collect it before it overflows *)
  (if gen && arena = None && where = H.Young
   && H.young_count h >= max 1 cfg.H.nursery
  then minor_collect m);
  let addr =
    match H.take_free h with
    | Some a -> a
    | None -> (
        match H.bump h with
        | Some a -> a
        | None ->
            if arena <> None then begin
              (* arena allocation models stack / local-heap storage: it
                 never triggers a collection, the store just grows *)
              H.grow_store h;
              Option.get (H.bump h)
            end
            else begin
              (* heap allocation with an exhausted store: collect, then
                 retry; generational heaps try a nursery collection
                 before resorting to a full one *)
              if gen && H.young_count h > 0 then begin
                minor_collect m;
                if H.take_free h = None then collect m
              end
              else collect m;
              match H.take_free h with
              | Some a -> a
              | None ->
                  if m.grow then begin
                    H.grow_store h;
                    Option.get (H.bump h)
                  end
                  else raise Out_of_memory
            end)
  in
  let c = H.get h addr in
  assert c.H.free;
  c.H.car <- hd;
  c.H.cdr <- tl;
  H.register h addr
    (match arena with Some ar -> H.In_arena ar | None -> where);
  (* init barrier: an old or arena-resident cell may be born holding
     young references *)
  (match (arena, where) with
  | Some _, _ | None, H.Old -> H.barrier h addr
  | None, _ -> ());
  Wptr addr

(* ---- primitives ---------------------------------------------------------- *)

let type_name = function
  | Wint _ -> "int"
  | Wbool _ -> "bool"
  | Wnil | Wptr _ -> "list"
  | Wpair _ -> "pair"
  | Wleaf | Wtree _ -> "tree"
  | Wclos _ | Wprim _ | Wcons_at _ | Wnode_at _ | Wdcons _ | Wdnode _ -> "function"

let as_int = function Wint n -> n | w -> error "expected an int, got a %s" (type_name w)
let as_bool = function Wbool b -> b | w -> error "expected a bool, got a %s" (type_name w)

let delta m p args =
  match (p, args) with
  | Ast.Add, [ a; b ] -> Wint (as_int a + as_int b)
  | Ast.Sub, [ a; b ] -> Wint (as_int a - as_int b)
  | Ast.Mul, [ a; b ] -> Wint (as_int a * as_int b)
  | Ast.Div, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "division by zero" else Wint (as_int a / d)
  | Ast.Mod, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "modulo by zero" else Wint (as_int a mod d)
  | Ast.Eq, [ a; b ] -> Wbool (as_int a = as_int b)
  | Ast.Ne, [ a; b ] -> Wbool (as_int a <> as_int b)
  | Ast.Lt, [ a; b ] -> Wbool (as_int a < as_int b)
  | Ast.Le, [ a; b ] -> Wbool (as_int a <= as_int b)
  | Ast.Gt, [ a; b ] -> Wbool (as_int a > as_int b)
  | Ast.Ge, [ a; b ] -> Wbool (as_int a >= as_int b)
  | Ast.And, [ a; b ] -> Wbool (as_bool a && as_bool b)
  | Ast.Or, [ a; b ] -> Wbool (as_bool a || as_bool b)
  | Ast.Not, [ a ] -> Wbool (not (as_bool a))
  | Ast.Car, [ Wptr a ] -> (cell_read m "car" a).H.car
  | Ast.Car, [ Wnil ] -> error "car of nil"
  | Ast.Car, [ w ] -> error "car of a %s" (type_name w)
  | Ast.Cdr, [ Wptr a ] -> (cell_read m "cdr" a).H.cdr
  | Ast.Cdr, [ Wnil ] -> error "cdr of nil"
  | Ast.Cdr, [ w ] -> error "cdr of a %s" (type_name w)
  | Ast.Null, [ Wnil ] -> Wbool true
  | Ast.Null, [ Wptr _ ] -> Wbool false
  | Ast.Null, [ w ] -> error "null of a %s" (type_name w)
  | Ast.Fst, [ Wpair a ] -> (cell_read m "fst" a).H.car
  | Ast.Fst, [ w ] -> error "fst of a %s" (type_name w)
  | Ast.Snd, [ Wpair a ] -> (cell_read m "snd" a).H.cdr
  | Ast.Snd, [ w ] -> error "snd of a %s" (type_name w)
  | Ast.Isleaf, [ Wleaf ] -> Wbool true
  | Ast.Isleaf, [ Wtree _ ] -> Wbool false
  | Ast.Isleaf, [ w ] -> error "isleaf of a %s" (type_name w)
  | Ast.Label, [ Wtree a ] -> (cell_read m "label" a).H.lbl
  | Ast.Label, [ Wleaf ] -> error "label of leaf"
  | Ast.Label, [ w ] -> error "label of a %s" (type_name w)
  | Ast.Left, [ Wtree a ] -> (cell_read m "left" a).H.car
  | Ast.Left, [ Wleaf ] -> error "left of leaf"
  | Ast.Left, [ w ] -> error "left of a %s" (type_name w)
  | Ast.Right, [ Wtree a ] -> (cell_read m "right" a).H.cdr
  | Ast.Right, [ Wleaf ] -> error "right of leaf"
  | Ast.Right, [ w ] -> error "right of a %s" (type_name w)
  | (Ast.Cons | Ast.Pair | Ast.Node), _ -> assert false (* handled by the allocator *)
  | _, _ -> error "primitive %s applied to %d arguments" (Ast.prim_name p) (List.length args)

let do_dcons m p hd tl =
  match p with
  | Wptr a ->
      let c = H.get m.heap a in
      if c.H.free then error "DCONS on a freed cell";
      c.H.car <- hd;
      c.H.cdr <- tl;
      (* reuse can write young references into an old or arena cell *)
      H.barrier m.heap a;
      m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
      Wptr a
  | Wnil -> error "DCONS on nil (no cell to reuse)"
  | w -> error "DCONS on a %s (no cell to reuse)" (type_name w)

let do_dnode m p l x r =
  match p with
  | Wtree a ->
      let c = H.get m.heap a in
      if c.H.free then error "DNODE on a freed cell";
      c.H.car <- l;
      c.H.lbl <- x;
      c.H.cdr <- r;
      H.barrier m.heap a;
      m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
      Wtree a
  | Wleaf -> error "DNODE on leaf (no cell to reuse)"
  | w -> error "DNODE on a %s (no cell to reuse)" (type_name w)

(* ---- arena safety check --------------------------------------------------- *)

let reachable_into_arena m roots sid =
  let seen = Hashtbl.create 256 in
  let seen_clos = ref [] in
  let hit = ref false in
  let rec walk = function
    | Wint _ | Wbool _ | Wnil | Wleaf -> ()
    | Wptr a | Wpair a | Wtree a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          let c = H.get m.heap a in
          if c.H.arena = sid then hit := true;
          walk c.H.car;
          walk c.H.cdr;
          walk c.H.lbl
        end
    | Wclos c ->
        if not (List.memq c !seen_clos) then begin
          seen_clos := c :: !seen_clos;
          Env.iter
            (fun _ b ->
              match b with
              | Ready w -> walk w
              | Slot { contents = Some w } -> walk w
              | Slot { contents = None } -> ())
            c.cenv
        end
    | Wprim (_, args) | Wcons_at (_, args) | Wnode_at (_, args) | Wdcons args
    | Wdnode args ->
        List.iter walk args
  in
  List.iter walk roots;
  !hit

(* ---- evaluation ------------------------------------------------------------ *)

let lookup env x =
  match Env.find_opt x env with
  | Some (Ready w) -> w
  | Some (Slot { contents = Some w }) -> w
  | Some (Slot { contents = None }) ->
      error "letrec binding %s is used before its definition is evaluated" x
  | None -> error "unbound identifier %s at run time" x

let rec eval_ir m env (e : Ir.expr) : word =
  tick m;
  match e with
  | Ir.Const (Ast.Cint n) -> Wint n
  | Ir.Const (Ast.Cbool b) -> Wbool b
  | Ir.Const Ast.Cnil -> Wnil
  | Ir.Const Ast.Cleaf -> Wleaf
  | Ir.Prim p -> Wprim (p, [])
  | Ir.ConsAt a -> Wcons_at (a, [])
  | Ir.NodeAt a -> Wnode_at (a, [])
  | Ir.Dcons -> Wdcons []
  | Ir.Dnode -> Wdnode []
  | Ir.Var x -> lookup env x
  | Ir.Lam (x, b) ->
      Wclos { param = x; body = b; cenv = env; cmark = false; hints = [] }
  | Ir.App (f, a) ->
      let vf = eval_ir m env f in
      push m vf;
      let va = eval_ir m env a in
      pop m;
      apply m vf va
  | Ir.If (c, t, f) -> if as_bool (eval_ir m env c) then eval_ir m env t else eval_ir m env f
  | Ir.Letrec (bs, body) ->
      let slots = List.map (fun (x, _) -> (x, ref None)) bs in
      let env' =
        List.fold_left (fun env (x, slot) -> Env.add x (Slot slot) env) env slots
      in
      m.env_stack <- env' :: m.env_stack;
      List.iter2
        (fun (x, rhs) (_, slot) ->
          let v = eval_ir m env' rhs in
          tag_hints m x rhs v;
          slot := Some v)
        bs slots;
      let v = eval_ir m env' body in
      m.env_stack <- List.tl m.env_stack;
      v
  | Ir.WithArena (kind, sid, body) ->
      if not (H.config m.heap).H.regions then
        (* regions disabled (a chaos-harness coverage configuration):
           no arena is opened, and the allocator sends this arena's
           sites to the GC heap instead *)
        eval_ir m env body
      else begin
        let a = H.open_arena m.heap ~kind in
        let stack = Option.value ~default:[] (Hashtbl.find_opt m.arena_stacks sid) in
        Hashtbl.replace m.arena_stacks sid (a :: stack);
        let v = eval_ir m env body in
        Hashtbl.replace m.arena_stacks sid stack;
        if m.check_arenas then begin
          let roots = (v :: m.shadow) @ List.concat_map env_words m.env_stack in
          if reachable_into_arena m roots a.H.dyn_id then
            error "arena safety violation: a cell of arena %d escapes its scope" sid
        end;
        H.close_arena m.heap a;
        v
      end

and env_words env =
  Env.fold
    (fun _ b acc ->
      match b with
      | Ready w -> w :: acc
      | Slot { contents = Some w } -> w :: acc
      | Slot { contents = None } -> acc)
    env []

(* tag a letrec-bound closure with the advisory dead-spine hints of its
   binder, so calls through the binding can be counted when they bind a
   hinted parameter to an actual spine *)
and tag_hints m x rhs v =
  match v with
  | Wclos c when c.hints = [] ->
      let cfg = H.config m.heap in
      if cfg.H.liveness_hints <> [] then begin
        let rec lam_arity = function
          | Ir.Lam (_, b) -> 1 + lam_arity b
          | _ -> 0
        in
        let idxs = ref [] in
        for i = lam_arity rhs downto 1 do
          if H.hinted_dead_spine cfg ~fname:x ~arg:i then idxs := i :: !idxs
        done;
        if !idxs <> [] then begin
          c.hints <- !idxs;
          m.stats.Stats.hint_sites <-
            m.stats.Stats.hint_sites + List.length !idxs
        end
      end
  | _ -> ()

and apply m vf va =
  tick m;
  push m vf;
  push m va;
  let result =
    match vf with
    | Wclos ({ param; body; cenv; _ } as c) ->
        (if List.mem 1 c.hints then
           match va with
           | Wptr _ | Wnil ->
               m.stats.Stats.hints_accepted <- m.stats.Stats.hints_accepted + 1
           | _ -> ());
        let env' = Env.add param (Ready va) cenv in
        m.env_stack <- env' :: m.env_stack;
        let r = eval_ir m env' body in
        m.env_stack <- List.tl m.env_stack;
        (* under currying, hint [i] of this closure is hint [i-1] of
           the closure its body returns — propagate only when the body
           is syntactically the next lambda of the same nest *)
        (match (body, r) with
        | Ir.Lam _, Wclos rc when rc.hints = [] ->
            let rest =
              List.filter_map
                (fun i -> if i > 1 then Some (i - 1) else None)
                c.hints
            in
            if rest <> [] then rc.hints <- rest
        | _ -> ());
        r
    | Wprim (Ast.Cons, [ hd ]) -> alloc_cell m Ir.Heap hd va
    | Wprim (Ast.Pair, [ a ]) -> (
        match alloc_cell m Ir.Heap a va with
        | Wptr addr -> Wpair addr
        | _ -> assert false)
    | Wprim (Ast.Node, [ l; x ]) -> (
        (match (l, va) with
        | (Wleaf | Wtree _), (Wleaf | Wtree _) -> ()
        | _ -> error "node: children must be trees");
        match alloc_cell m Ir.Heap l va with
        | Wptr addr ->
            (H.get m.heap addr).H.lbl <- x;
            H.barrier m.heap addr;
            Wtree addr
        | _ -> assert false)
    | Wprim (p, collected) ->
        let args = collected @ [ va ] in
        if List.length args = Ast.prim_arity p then delta m p args else Wprim (p, args)
    | Wcons_at (target, []) -> Wcons_at (target, [ va ])
    | Wcons_at (target, [ hd ]) -> alloc_cell m target hd va
    | Wcons_at (_, _) -> error "annotated cons applied to too many arguments"
    | Wnode_at (target, ([] | [ _ ] as args)) -> Wnode_at (target, args @ [ va ])
    | Wnode_at (target, [ l; x ]) -> (
        (match (l, va) with
        | (Wleaf | Wtree _), (Wleaf | Wtree _) -> ()
        | _ -> error "node: children must be trees");
        match alloc_cell m target l va with
        | Wptr addr ->
            (H.get m.heap addr).H.lbl <- x;
            H.barrier m.heap addr;
            Wtree addr
        | _ -> assert false)
    | Wnode_at (_, _) -> error "annotated node applied to too many arguments"
    | Wdcons [ p; hd ] -> do_dcons m p hd va
    | Wdcons args when List.length args < 2 -> Wdcons (args @ [ va ])
    | Wdcons _ -> error "DCONS applied to too many arguments"
    | Wdnode [ p; l; x ] -> do_dnode m p l x va
    | Wdnode args when List.length args < 3 -> Wdnode (args @ [ va ])
    | Wdnode _ -> error "DNODE applied to too many arguments"
    | w -> error "cannot apply a %s as a function" (type_name w)
  in
  pop m;
  pop m;
  result

let eval m e =
  let before = Stats.snapshot m.stats in
  Fun.protect
    ~finally:(fun () -> Stats.global_add ~before ~after:m.stats)
    (fun () -> eval_ir m Env.empty e)

let run m p = eval m (Ir.of_program p)

let read_value m w =
  let budget = ref 1_000_000 in
  let rec go w =
    decr budget;
    if !budget <= 0 then error "read_value: structure too large or cyclic";
    match w with
    | Wint n -> Nml.Eval.Vint n
    | Wbool b -> Nml.Eval.Vbool b
    | Wnil -> Nml.Eval.Vnil
    | Wptr a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vcons (go c.H.car, go c.H.cdr)
    | Wpair a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vpair (go c.H.car, go c.H.cdr)
    | Wleaf -> Nml.Eval.Vleaf
    | Wtree a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vnode (go c.H.car, go c.H.lbl, go c.H.cdr)
    | Wclos _ | Wprim _ | Wcons_at _ | Wnode_at _ | Wdcons _ | Wdnode _ ->
        error "read_value: result is a function"
  in
  go w

let cell_words m a =
  let c = H.get m.heap a in
  if c.H.free then error "cell_words: address %d is a freed cell" a;
  (c.H.car, c.H.cdr, c.H.lbl)

let rec pp_word m ppf = function
  | Wint n -> Format.pp_print_int ppf n
  | Wbool b -> Format.pp_print_bool ppf b
  | Wnil -> Format.pp_print_string ppf "[]"
  | Wptr a ->
      let c = H.get m.heap a in
      Format.fprintf ppf "@[<hov 1>(%a ::@ %a)@]" (pp_word m) c.H.car (pp_word m) c.H.cdr
  | Wpair a ->
      let c = H.get m.heap a in
      Format.fprintf ppf "@[<hov 1>(%a,@ %a)@]" (pp_word m) c.H.car (pp_word m) c.H.cdr
  | Wleaf -> Format.pp_print_string ppf "leaf"
  | Wtree a ->
      let c = H.get m.heap a in
      Format.fprintf ppf "@[<hov 1>(node %a %a %a)@]" (pp_word m) c.H.car (pp_word m)
        c.H.lbl (pp_word m) c.H.cdr
  | Wclos { param; _ } -> Format.fprintf ppf "<fun %s>" param
  | Wprim (p, args) -> Format.fprintf ppf "<prim %s/%d>" (Ast.prim_name p) (List.length args)
  | Wcons_at (_, args) -> Format.fprintf ppf "<cons@/%d>" (List.length args)
  | Wnode_at (_, args) -> Format.fprintf ppf "<node@/%d>" (List.length args)
  | Wdcons args -> Format.fprintf ppf "<dcons/%d>" (List.length args)
  | Wdnode args -> Format.fprintf ppf "<dnode/%d>" (List.length args)
