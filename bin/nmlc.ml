(* nmlc — driver for the nml escape-analysis toolchain.

   Subcommands:
     parse      parse and pretty-print a program
     typecheck  print the inferred type scheme of every definition
     eval       run the reference interpreter
     analyze    global escape + sharing report (optionally the
                enumeration engine, or a local test on the main call)
     batch      analyze or lint many files on a pool of domains through
                the persistent summary cache
     optimize   print the optimized program and what was applied
     run        execute on the storage simulator and print statistics,
                optionally comparing baseline and optimized runs
     check      differential soundness harness: reference interpreter vs
                machine (baseline / optimized / optimized under fault
                injection) on a program corpus and random programs
     vet        independent annotation verifier: re-derive the proof
                obligation behind every storage annotation of the
                optimized program, with source-located diagnostics and
                seeded mutation testing of the verifier itself
     lint       escape-informed lint rules (missed reuse, heap-doomed
                results, Theorem-1 self-audit, dead spines, unused
                bindings) with inline suppressions and SARIF output

   Exit codes: 0 clean, 1 findings / divergence / user error,
   2 storage exhausted (Out_of_memory), 3 step budget exhausted
   (Out_of_fuel), 124 internal error. *)

open Cmdliner

(* a diagnostic-producing stage found something: details are already
   printed, only the exit code is left to set *)
exception Findings

(* test hook for the internal-error path: any command aborts before
   doing work when NMLC_INTERNAL_ERROR is set *)
exception Internal_error of string

let () =
  Printexc.register_printer (function
    | Internal_error msg -> Some msg
    | _ -> None)

let read_input file inline =
  match (file, inline) with
  | Some f, None -> (
      match In_channel.with_open_text f In_channel.input_all with
      | src -> (f, src)
      | exception Sys_error msg -> failwith msg)
  | None, Some src -> ("<command line>", src)
  | Some _, Some _ -> failwith "give either a file or -e, not both"
  | None, None -> failwith "give a program file or -e SRC"

let surface_of file inline =
  let name, src = read_input file inline in
  Nml.Surface.of_string ~file:name src

let diagnose format ~code loc msg =
  Format.eprintf "%a@."
    (Nml.Diagnostic.render format)
    [ Nml.Diagnostic.error ~code loc msg ]

let handle ?(format = Nml.Diagnostic.Human) f =
  try
    (match Sys.getenv_opt "NMLC_INTERNAL_ERROR" with
    | Some _ -> raise (Internal_error "forced by NMLC_INTERNAL_ERROR")
    | None -> ());
    f ();
    0
  with
  | Findings -> 1
  | Failure msg | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Nml.Lexer.Error (loc, msg) ->
      diagnose format ~code:"LEX001" loc msg;
      1
  | Nml.Parser.Error (loc, msg) ->
      diagnose format ~code:"PARSE001" loc msg;
      1
  | Nml.Infer.Error (loc, msg) ->
      diagnose format ~code:"TYPE001" loc msg;
      1
  | Nml.Eval.Runtime_error msg | Runtime.Machine.Error msg | Backend.Vm.Error msg ->
      Printf.eprintf "runtime error: %s\n" msg;
      1
  | Escape.Enumerate.Higher_order msg ->
      Printf.eprintf "enumeration engine: program is not first order: %s\n" msg;
      1
  | Runtime.Machine.Out_of_memory | Backend.Vm.Out_of_memory ->
      Printf.eprintf
        "error: out of memory: the cell store is exhausted even after a collection \
         (raise --heap, or drop --no-grow)\n";
      2
  | Runtime.Machine.Out_of_fuel | Nml.Eval.Out_of_fuel | Backend.Vm.Out_of_fuel ->
      Printf.eprintf "error: out of fuel: the step budget is exhausted (raise --fuel)\n";
      3
  | Backend.Vm.Internal msg ->
      Printf.eprintf "nmlc: internal error: the bytecode backend broke an invariant: %s\n"
        msg;
      124
  | e ->
      Printf.eprintf "nmlc: internal error: %s\n" (Printexc.to_string e);
      124

(* ---- common arguments and plumbing ----------------------------------------- *)

(* One source-taking subcommand body = one [with_source] call: input
   resolution, the toolchain exception regime and the 0/1/2/3/124 exit
   mapping live in exactly one place. *)
let with_source ?format file inline k =
  handle ?format (fun () -> k (surface_of file inline))

let format_conv =
  Arg.enum
    [
      ("human", Nml.Diagnostic.Human);
      ("json", Nml.Diagnostic.Json);
      ("sarif", Nml.Diagnostic.Sarif);
    ]

let format_arg ~doc = Arg.(value & opt format_conv Nml.Diagnostic.Human & info [ "format" ] ~docv:"FORMAT" ~doc)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file.")

let inline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"SRC" ~doc:"Program given inline.")

(* ---- commands -------------------------------------------------------------- *)

let parse_cmd =
  let run file inline =
    with_source file inline (fun s -> Format.printf "%a@." Nml.Surface.pp s)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and pretty-print a program")
    Term.(const run $ file_arg $ inline_arg)

let typecheck_cmd =
  let run file inline =
    with_source file inline (fun s ->
        let prog = Nml.Infer.infer_program s in
        List.iter
          (fun (name, s) ->
            Format.printf "%s : %a@." name Nml.Infer.pp_scheme s)
          prog.Nml.Infer.schemes;
        Format.printf "main : %a@." Nml.Ty.pp (Nml.Infer.main_ground prog).Nml.Tast.ty)
  in
  Cmd.v (Cmd.info "typecheck" ~doc:"Infer and print definition type schemes")
    Term.(const run $ file_arg $ inline_arg)

let eval_cmd =
  let run file inline fuel =
    with_source file inline (fun s ->
        let v = Nml.Eval.run ?fuel s in
        Format.printf "%a@." Nml.Eval.pp_value v)
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Bound the number of evaluation steps.")
  in
  Cmd.v (Cmd.info "eval" ~doc:"Run the reference interpreter")
    Term.(const run $ file_arg $ inline_arg $ fuel)

let stats_json stats =
  let module J = Nml.Json in
  let module Fix = Escape.Fixpoint in
  J.Obj
    [
      ("schema", J.Str "nmlc/solver-stats-v1");
      ("engine", J.Str (Fix.engine_name stats.Fix.stats_engine));
      ("passes", J.int stats.Fix.stats_passes);
      ("iterations", J.int stats.Fix.stats_iterations);
      ("entries", J.int stats.Fix.stats_entries);
      ("evaluations", J.int stats.Fix.stats_evaluations);
      ("sccs", J.int stats.Fix.stats_sccs);
      ("largest_scc", J.int stats.Fix.stats_largest_scc);
      ("cache_hits", J.int stats.Fix.stats_cache_hits);
      ("cache_misses", J.int stats.Fix.stats_cache_misses);
      ("cache_invalidated", J.int stats.Fix.stats_cache_invalidated);
      ("d_bound", J.int stats.Fix.stats_dbound);
      ("capped", J.Bool stats.Fix.stats_capped);
    ]

(* Storage section of [analyze --stats]/[--json]: execute the optimized
   program on a generational heap with a bounded step budget and report
   the heap counters.  Deterministic — the machine is exact and the pause
   rows are the cells-touched percentiles, never wall-clock. *)
let heap_row_of surface =
  let options =
    { Optimize.Transform.all with Optimize.Transform.pretenure = true }
  in
  let ir = (Optimize.Transform.optimize ~options surface).Optimize.Transform.ir in
  (* the same advisory dead-spine hints a [run --policy generational]
     computes, so the hint-acceptance counters show up here too *)
  let liveness_hints =
    let t = Framework.Spinelive.Solver.make (Nml.Infer.infer_program surface) in
    Framework.Spinelive.dead_spine_params t
  in
  let config =
    { Runtime.Heap.generational with Runtime.Heap.liveness_hints }
  in
  let m = Runtime.Machine.create ~heap_size:4096 ~fuel:1_000_000 ~config () in
  match Runtime.Machine.eval m ir with
  | _ -> Ok (Runtime.Stats.to_row (Runtime.Machine.stats m))
  | exception Runtime.Machine.Out_of_fuel -> Error "step budget exhausted"
  | exception Runtime.Machine.Out_of_memory -> Error "storage exhausted"
  | exception Runtime.Machine.Error msg -> Error msg

let list_analyses () =
  Format.printf "@[<v 0>registered analyses:@,";
  List.iter
    (fun (e : Analyses.Registry.entry) ->
      let aliases =
        match e.Analyses.Registry.aliases with
        | [] -> ""
        | a -> Printf.sprintf " (alias: %s)" (String.concat ", " a)
      in
      Format.printf "  %-16s %s%s@,  %-16s domain: %s@,  %-16s cache: %s/%s@,"
        e.Analyses.Registry.name e.Analyses.Registry.doc aliases ""
        e.Analyses.Registry.domain "" Cache.Skey.schema_version
        e.Analyses.Registry.name)
    Analyses.Registry.all;
  Format.printf "@]@?"

let analyze_cmd =
  let run_escape file inline func enumerate local engine show_stats json =
    with_source file inline (fun s ->
        if json then begin
          if enumerate then
            failwith "--json reports the fixpoint solver, not --enumerate";
          let t = Escape.Fixpoint.make ~engine (Nml.Infer.infer_program s) in
          (* drive the same queries the report makes, then emit the counters *)
          ignore (Format.asprintf "%a" Escape.Report.program t);
          let module J = Nml.Json in
          let heap =
            match heap_row_of s with
            | Ok row -> J.Obj (List.map (fun (k, v) -> (k, J.int v)) row)
            | Error reason -> J.Obj [ ("skipped", J.Str reason) ]
          in
          let solver =
            match stats_json (Escape.Fixpoint.stats t) with
            | J.Obj fields -> fields
            | _ -> assert false
          in
          print_string (J.to_string (J.Obj (solver @ [ ("heap", heap) ])))
        end
        else if enumerate then begin
          let e = Escape.Enumerate.solve (Nml.Infer.infer_program s) in
          List.iter
            (fun (name, _) ->
              let prog = Nml.Infer.infer_program s in
              let inst = Nml.Infer.simplest_instance prog name in
              let n = Nml.Ty.arity inst in
              Format.printf "%s : %s@." name (Nml.Ty.to_string inst);
              for i = 1 to n do
                Format.printf "  G(%s, %d) = %s@." name i
                  (Escape.Besc.to_string (Escape.Enumerate.global e name ~arg:i))
              done)
            s.Nml.Surface.defs;
          Format.printf "(%d table entries, %d rounds)@." (Escape.Enumerate.entries e)
            (Escape.Enumerate.iterations e)
        end
        else begin
          let t = Escape.Fixpoint.make ~engine (Nml.Infer.infer_program s) in
          (match func with
          | Some f -> Format.printf "%a@." (fun ppf () -> Escape.Report.definition ppf t f) ()
          | None -> Format.printf "%a@." Escape.Report.program t);
          if local then begin
            match s.Nml.Surface.main with
            | Nml.Ast.App (_, _, _) as call ->
                let rec head = function Nml.Ast.App (_, f, _) -> head f | e -> e in
                let rec args acc = function
                  | Nml.Ast.App (_, f, a) -> args (a :: acc) f
                  | _ -> acc
                in
                (match head call with
                | Nml.Ast.Var (_, f) ->
                    Format.printf "%a@."
                      (fun ppf () -> Escape.Report.call ppf t f (args [] call))
                      ()
                | _ -> failwith "--local: the main expression is not a call of a definition")
            | _ -> failwith "--local: the main expression is not a call"
          end;
          (* last, so a failing stage above never leaves a misleading
             half-report with statistics attached *)
          if show_stats then begin
            Format.printf "-- solver --@.%a@." Escape.Fixpoint.pp_stats
              (Escape.Fixpoint.stats t);
            match heap_row_of s with
            | Ok row ->
                Format.printf "-- storage (generational heap) --@.%a@."
                  (Format.pp_print_list ~pp_sep:Format.pp_print_newline
                     (fun ppf (k, v) -> Format.fprintf ppf "%-18s %d" k v))
                  row
            | Error reason ->
                Format.printf "-- storage (generational heap) --@.skipped (%s)@."
                  reason
          end
        end)
  in
  let run file inline func enumerate local engine show_stats json analysis listing =
    if listing then begin
      list_analyses ();
      0
    end
    else if String.equal analysis "escape" then
      run_escape file inline func enumerate local engine show_stats json
    else
      with_source file inline (fun s ->
          let e =
            match Analyses.Registry.find analysis with
            | Some e -> e
            | None ->
                failwith
                  (Printf.sprintf "unknown analysis %s (try --list-analyses)" analysis)
          in
          if enumerate || local || json || func <> None then
            failwith "--enumerate/--local/--json/-f apply to the escape analysis only";
          let o = e.Analyses.Registry.run (Nml.Infer.infer_program s) in
          print_string o.Analyses.Registry.output;
          if show_stats then
            Format.printf
              "-- solver --@.analysis            %s@.definitions         \
               %d@.entry evaluations   %d@."
              e.Analyses.Registry.name o.Analyses.Registry.defs
              o.Analyses.Registry.evaluations)
  in
  let func =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "fun" ] ~docv:"NAME" ~doc:"Analyze a single definition.")
  in
  let enumerate =
    Arg.(
      value & flag
      & info [ "enumerate" ]
          ~doc:"Use the full-enumeration first-order engine instead of the probe engine.")
  in
  let local =
    Arg.(
      value & flag
      & info [ "local" ] ~doc:"Also run the local escape test on the main call.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("worklist", Escape.Fixpoint.Worklist);
               ("round-robin", Escape.Fixpoint.Round_robin);
             ])
          Escape.Fixpoint.Worklist
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Fixpoint engine: $(b,worklist) (dependency-driven, default) or \
                $(b,round-robin) (legacy full re-evaluation).")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print solver statistics (passes, entry evaluations, SCCs, application \
                cache behaviour) after the report.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the solver statistics as a JSON document instead of the report \
                (not available with --enumerate).")
  in
  let analysis =
    Arg.(
      value & opt string "escape"
      & info [ "analysis" ] ~docv:"NAME"
          ~doc:
            "Which registered analysis to run: $(b,escape) (default), $(b,usage) \
             (alias $(b,strictness)), $(b,spine-liveness), $(b,escape-x-usage) \
             (alias $(b,product)), or $(b,sharing) (alias $(b,alias)).  See \
             $(b,--list-analyses).")
  in
  let listing =
    Arg.(
      value & flag
      & info [ "list-analyses" ]
          ~doc:"List the registered analyses (name, question, abstract domain) and exit.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Escape analysis report (global tests and sharing)")
    Term.(
      const run $ file_arg $ inline_arg $ func $ enumerate $ local $ engine $ show_stats
      $ json $ analysis $ listing)

let batch_cmd =
  let expand path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".nml")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  let run paths jobs cache_dir no_cache lint format analysis =
    let rc = ref 0 in
    let code =
      handle (fun () ->
          let files = List.concat_map expand paths in
          if files = [] then failwith "no .nml program files to analyze";
          let store = if no_cache then None else Some (Cache.Store.create cache_dir) in
          (* janitor: staging files a crashed earlier run left behind *)
          (match store with Some s -> ignore (Cache.Store.cleanup_tmp s) | None -> ());
          let jobs = match jobs with Some n -> max 1 n | None -> Domain.recommended_domain_count () in
          let analyze =
            if lint then begin
              if not (String.equal analysis "escape") then
                failwith "--lint runs the lint rules; it does not take --analysis";
              Some (fun ~store path -> Lint.Batch.analyze_file ~store path)
            end
            else if String.equal analysis "escape" then None
            else
              match Analyses.Registry.find analysis with
              | None ->
                  failwith
                    (Printf.sprintf "unknown analysis %s (try nmlc analyze --list-analyses)"
                       analysis)
              | Some e when String.equal e.Analyses.Registry.name "escape" -> None
              | Some e -> Some (fun ~store path -> Analyses.Registry.batch_job e ~store path)
          in
          (* SIGINT/SIGTERM drain the pool instead of killing it mid-write:
             in-flight files finish (and their summaries commit through the
             atomic-rename path), unstarted files come back as code 130 *)
          let interrupted = Atomic.make false in
          let previous =
            List.map
              (fun s ->
                (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))))
              [ Sys.sigint; Sys.sigterm ]
          in
          let results =
            Fun.protect
              ~finally:(fun () -> List.iter (fun (s, b) -> Sys.set_signal s b) previous)
              (fun () ->
                Cache.Batch.run ?analyze ?store
                  ~stop:(fun () -> Atomic.get interrupted)
                  ~jobs files)
          in
          let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
          let ok = List.length (List.filter (fun r -> r.Cache.Batch.code = 0) results) in
          let evals = total (fun r -> r.Cache.Batch.evaluations) in
          let hits = total (fun r -> r.Cache.Batch.scc_hits) in
          let misses = total (fun r -> r.Cache.Batch.scc_misses) in
          let findings = total (fun r -> r.Cache.Batch.findings) in
          (match format with
          | `Human ->
              List.iter
                (fun r ->
                  Format.printf "== %s ==@." r.Cache.Batch.path;
                  print_string r.Cache.Batch.output;
                  (* keep each file's stderr next to its header in
                     captured output *)
                  flush stdout;
                  prerr_string r.Cache.Batch.errors;
                  flush stderr)
                results;
              if lint then
                Format.printf
                  "lint: %d file(s), %d clean, %d finding(s); %d entry evaluation(s), \
                   %d scc hit(s), %d scc miss(es)@."
                  (List.length results) ok findings evals hits misses
              else
                Format.printf
                  "batch: %d file(s), %d ok, %d error(s); %d entry evaluation(s), %d scc \
                   hit(s), %d scc miss(es)@."
                  (List.length results) ok
                  (List.length results - ok)
                  evals hits misses;
              let failed =
                List.filter (fun r -> r.Cache.Batch.code = 124) results
              in
              if failed <> [] then
                Format.printf "failed: %s@."
                  (String.concat ", "
                     (List.map (fun r -> r.Cache.Batch.path) failed));
              let skipped =
                List.length (List.filter (fun r -> r.Cache.Batch.code = 130) results)
              in
              if skipped > 0 then
                Format.printf "%s: interrupted, %d file(s) not analyzed@."
                  (if lint then "lint" else "batch")
                  skipped
          | `Json ->
              let module J = Nml.Json in
              let file_json r =
                J.Obj
                  ([
                     ("path", J.Str r.Cache.Batch.path);
                     ("code", J.int r.Cache.Batch.code);
                     ("defs", J.int r.Cache.Batch.defs);
                   ]
                  @ (if lint then [ ("findings", J.int r.Cache.Batch.findings) ] else [])
                  @ [
                      ("evaluations", J.int r.Cache.Batch.evaluations);
                      ("scc_hits", J.int r.Cache.Batch.scc_hits);
                      ("scc_misses", J.int r.Cache.Batch.scc_misses);
                    ]
                  @
                  if r.Cache.Batch.errors = "" then []
                  else [ ("errors", J.Str r.Cache.Batch.errors) ])
              in
              print_string
                (J.to_string
                   (J.Obj
                      ([
                         ("schema", J.Str "nmlc/batch-v1");
                         ("files", J.Arr (List.map file_json results));
                       ]
                      @ (if lint then [ ("findings", J.int findings) ] else [])
                      @ [
                          ("evaluations", J.int evals);
                          ("scc_hits", J.int hits);
                          ("scc_misses", J.int misses);
                          ("errors", J.int (List.length results - ok));
                        ]))));
          rc := Cache.Batch.exit_code results)
    in
    if code <> 0 then code else !rc
  in
  let paths =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"PATH"
          ~doc:"Program files, or directories scanned for $(b,*.nml) files.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Number of analysis domains (default: the machine's recommended \
                domain count).")
  in
  let cache_dir =
    Arg.(
      value
      & opt string ".nmlc-cache"
      & info [ "cache" ] ~docv:"DIR" ~doc:"Persistent summary cache directory.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Analyze cold, without reading or writing the cache.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:"Run the lint rules instead of the escape-summary report; per-SCC \
                findings are persisted and invalidated through the same cache.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Report rendering: $(b,human) (default, per-file reports and a summary \
                line) or $(b,json) (one machine-readable document, no timing data).")
  in
  let analysis =
    Arg.(
      value & opt string "escape"
      & info [ "analysis" ] ~docv:"NAME"
          ~doc:"Which registered analysis to run per file (default $(b,escape)); see \
                $(b,nmlc analyze --list-analyses).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Analyze or lint many programs in parallel through the persistent summary \
             cache")
    Term.(const run $ paths $ jobs $ cache_dir $ no_cache $ lint $ format $ analysis)

let options_term =
  let no_mono =
    Arg.(value & flag & info [ "no-mono" ] ~doc:"Do not monomorphize first.")
  in
  let no_reuse = Arg.(value & flag & info [ "no-reuse" ] ~doc:"Disable in-place reuse.") in
  let no_alias_reuse =
    Arg.(
      value & flag
      & info [ "no-alias-reuse" ]
          ~doc:"License in-place reuse from the Theorem-2 spine arithmetic only, \
                without the flow-sensitive sharing analysis.")
  in
  let no_stack =
    Arg.(value & flag & info [ "no-stack" ] ~doc:"Disable stack allocation.")
  in
  let no_block =
    Arg.(value & flag & info [ "no-block" ] ~doc:"Disable block allocation.")
  in
  let pretenure =
    Arg.(
      value & flag
      & info [ "pretenure" ]
          ~doc:"Retarget escape-doomed cons sites (escaping literal spines, the \
                result spine of main) to tenured-at-birth allocation.  A hint for \
                the generational heap; a no-op under the legacy heap.")
  in
  let mk m r a s b p =
    {
      Optimize.Transform.monomorphize = not m;
      reuse = not r;
      alias_reuse = (not r) && not a;
      stack = not s;
      block = not b;
      pretenure = p;
    }
  in
  Term.(const mk $ no_mono $ no_reuse $ no_alias_reuse $ no_stack $ no_block $ pretenure)

let mono_cmd =
  let run file inline =
    with_source file inline (fun s ->
        let r = Nml.Mono.run s in
        Format.printf "%a@.@." Nml.Surface.pp r.Nml.Mono.program;
        List.iter
          (fun (d, n, i) ->
            Format.printf "-- %s specialized as %s at %s@." d n (Nml.Ty.to_string i))
          r.Nml.Mono.instances)
  in
  Cmd.v
    (Cmd.info "mono" ~doc:"Monomorphize: one copy of each definition per used instance")
    Term.(const run $ file_arg $ inline_arg)

let optimize_cmd =
  let run file inline options =
    with_source file inline (fun s ->
        let r = Optimize.Transform.optimize ~options s in
        Format.printf "%a@." Optimize.Transform.pp_report r;
        Format.printf "%a@." Runtime.Ir.pp r.Optimize.Transform.ir)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Apply the storage optimizations and print the program")
    Term.(const run $ file_arg $ inline_arg $ options_term)

let run_cmd =
  let run file inline options optimized heap_size no_grow check compare fuel policy
      nursery no_regions no_pretenure backend =
    with_source file inline (fun s ->
        let base =
          match policy with
          | `Legacy -> Runtime.Heap.legacy
          | `Generational -> Runtime.Heap.generational
        in
        (* liveness hints for the generational collector: parameters
           whose argument spine the callee provably never needs past the
           head.  Advisory metadata — the stats rows are identical with
           and without them. *)
        let liveness_hints =
          match policy with
          | `Legacy -> []
          | `Generational ->
              let t = Framework.Spinelive.Solver.make (Nml.Infer.infer_program s) in
              Framework.Spinelive.dead_spine_params t
        in
        let config =
          {
            base with
            Runtime.Heap.regions = base.Runtime.Heap.regions && not no_regions;
            pretenure = base.Runtime.Heap.pretenure && not no_pretenure;
            nursery =
              (match nursery with
              | Some n -> max 1 n
              | None -> base.Runtime.Heap.nursery);
            liveness_hints;
          }
        in
        (* tenured-at-birth sites only exist if the optimizer emits them;
           a generational run turns the pass on unless the heap ignores it *)
        let options =
          if config.Runtime.Heap.pretenure then
            { options with Optimize.Transform.pretenure = true }
          else options
        in
        let exec ir =
          match backend with
          | `Interp ->
              let m =
                Runtime.Machine.create ~heap_size ~grow:(not no_grow)
                  ~check_arenas:check ?fuel ~config ()
              in
              let w = Runtime.Machine.eval m ir in
              (Runtime.Machine.read_value m w, Runtime.Machine.stats m)
          | `Vm ->
              let m =
                Backend.Vm.create ~heap_size ~grow:(not no_grow)
                  ~check_arenas:check ?fuel ~config ()
              in
              let v = Backend.Vm.eval m (Backend.Vm.compile ir) in
              (Backend.Vm.read_value m v, Backend.Vm.stats m)
        in
        let show label (v, stats) =
          Format.printf "%s result: %a@." label Nml.Eval.pp_value v;
          Format.printf "%a@." Runtime.Stats.pp stats
        in
        let baseline () = exec (Runtime.Ir.of_program s) in
        let opt () = exec (Optimize.Transform.optimize ~options s).Optimize.Transform.ir in
        if compare then begin
          show "baseline" (baseline ());
          show "optimized" (opt ())
        end
        else if optimized then show "optimized" (opt ())
        else show "baseline" (baseline ()))
  in
  let optimized =
    Arg.(value & flag & info [ "O"; "optimized" ] ~doc:"Run the optimized program.")
  in
  let heap =
    Arg.(value & opt int 4096 & info [ "heap" ] ~docv:"CELLS" ~doc:"Cell store capacity.")
  in
  let no_grow =
    Arg.(value & flag & info [ "no-grow" ] ~doc:"Fail instead of growing the store.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check-arenas" ] ~doc:"Validate arena safety at every arena exit.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ] ~doc:"Run both baseline and optimized, printing both.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Bound the number of machine steps.")
  in
  let policy =
    Arg.(
      value
      & opt (enum [ ("legacy", `Legacy); ("generational", `Generational) ]) `Legacy
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Heap policy: $(b,legacy) (default, the original mark-sweep store) \
                or $(b,generational) (nursery + promotion, escape verdicts as \
                pretenuring hints, extra statistics rows).")
  in
  let nursery =
    Arg.(
      value
      & opt (some int) None
      & info [ "nursery" ] ~docv:"CELLS"
          ~doc:"Nursery size for $(b,--policy generational) (default 1024): a minor \
                collection runs whenever this many young cells are live.")
  in
  let no_regions =
    Arg.(
      value & flag
      & info [ "no-regions" ]
          ~doc:"Ignore arena annotations: region/block allocations fall back to \
                ordinary heap cells (and arena exits reclaim nothing).")
  in
  let no_pretenure =
    Arg.(
      value & flag
      & info [ "no-pretenure" ]
          ~doc:"Under $(b,--policy generational), do not tenure escape-doomed \
                allocations at birth; everything unannotated starts in the nursery.")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("interp", `Interp); ("vm", `Vm) ]) `Interp
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Execution backend: $(b,interp) (default, the tree-walking storage \
                simulator) or $(b,vm) (the compact bytecode VM: ANF, flat closures, \
                known calls, tail calls — same heap policy, same statistics).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute on the storage simulator and print statistics")
    Term.(
      const run $ file_arg $ inline_arg $ options_term $ optimized $ heap $ no_grow
      $ check $ compare $ fuel $ policy $ nursery $ no_regions $ no_pretenure
      $ backend)

let compile_cmd =
  let run file inline options optimized dump_anf dump_bytecode =
    with_source file inline (fun s ->
        let ir =
          if optimized then
            (Optimize.Transform.optimize ~options s).Optimize.Transform.ir
          else Runtime.Ir.of_program s
        in
        if dump_anf then begin
          let a = Backend.Anf.lower ir in
          (match Backend.Anf.verify a with
          | Ok () -> ()
          | Error m ->
              raise (Backend.Vm.Internal ("ANF verification failed: " ^ m)));
          Format.printf "%a@." Backend.Anf.pp a
        end;
        let code = Backend.Vm.compile ir in
        if dump_bytecode then Format.printf "%a@." Backend.Vm.pp_code code
        else if not dump_anf then
          Format.printf "%a@." Backend.Closure.pp_report (Backend.Vm.report code))
  in
  let optimized =
    Arg.(
      value & flag
      & info [ "O"; "optimized" ] ~doc:"Compile the optimized program.")
  in
  let dump_anf =
    Arg.(
      value & flag
      & info [ "dump-anf" ]
          ~doc:"Print the A-normal form (verified: named intermediates, saturated \
                primitives, storage annotations as first-class forms).")
  in
  let dump_bytecode =
    Arg.(
      value & flag
      & info [ "dump-bytecode" ]
          ~doc:"Print the register bytecode after closure conversion, one function \
                per lambda nest, plus the conversion report.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Lower through the bytecode middle-end (ANF, closure conversion) and \
             print the requested stage; with no dump flag, print the closure-\
             conversion report")
    Term.(
      const run $ file_arg $ inline_arg $ options_term $ optimized $ dump_anf
      $ dump_bytecode)

let check_cmd =
  let run files count seed heap fuel chaos fault =
    handle (fun () ->
        let count = max 0 count in
        let cfg = { Check.Harness.heap; fuel; chaos; seed; fault } in
        let corpus =
          Check.Harness.builtin_corpus
          @ List.map
              (fun f -> (f, In_channel.with_open_text f In_channel.input_all))
              files
        in
        let report kind = function
          | Ok { Check.Harness.checked; passed; skipped } ->
              Format.printf "%s: %d checked, %d ok, %d skipped@." kind checked passed
                skipped;
              true
          | Error c ->
              Format.printf "%a@." Check.Harness.pp_counterexample c;
              false
        in
        let ok = report "corpus" (Check.Harness.check_corpus cfg corpus) in
        let ok =
          (count = 0 || report "random" (Check.Harness.check_random cfg ~count)) && ok
        in
        if not ok then failwith "soundness divergence (see counterexample above)";
        Format.printf "soundness: OK (differential oracle%s)@."
          (if chaos then ", chaos on" else ""))
  in
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Number of random programs to generate.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for program generation and fault injection; equal seeds reproduce \
                identical runs, including any counterexample.")
  in
  let heap =
    Arg.(
      value
      & opt int Check.Harness.default.Check.Harness.heap
      & info [ "heap" ] ~docv:"CELLS" ~doc:"Capacity of the fixed-size chaos heaps.")
  in
  let fuel =
    Arg.(
      value
      & opt int Check.Harness.default.Check.Harness.fuel
      & info [ "fuel" ] ~docv:"N" ~doc:"Step budget per run (0 = unlimited).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Inject faults into the machine: forced collections at pseudo-random \
                allocation points and poisoning of freed cells.")
  in
  let fault =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Check.Harness.No_fault);
               ("arena", Check.Harness.Widen_arena);
               ("dcons", Check.Harness.Misuse_dcons);
             ])
          Check.Harness.No_fault
      & info [ "inject-fault" ] ~docv:"KIND"
          ~doc:"Deliberately break one optimizer verdict (arena: widen a stack/block \
                verdict; dcons: misuse a reuse verdict) to demonstrate that the \
                harness detects it.  Expected to exit nonzero.")
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Additional program files to check.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential soundness harness: reference interpreter vs machine under \
             fault injection, on the builtin corpus and random programs")
    Term.(const run $ files $ count $ seed $ heap $ fuel $ chaos $ fault)

let vet_cmd =
  let run file inline options format mutate seed fault =
    with_source ~format file inline (fun s ->
        let ir =
          match fault with
          | Check.Harness.No_fault ->
              (Optimize.Transform.optimize ~options s).Optimize.Transform.ir
          | f -> (
              match Check.Harness.sabotage f s with
              | Some ir -> ir
              | None -> failwith "the requested fault does not apply to this program")
        in
        match mutate with
        | Some count ->
            let o = Vet.Mutate.campaign ~seed ~count ~source:s ir in
            if o.Vet.Mutate.points = 0 then
              Format.printf "vet: no mutation points in this program@."
            else begin
              Format.printf
                "vet: %d mutation point(s), %d draw(s), %d detected, %d survived@."
                o.Vet.Mutate.points o.Vet.Mutate.draws o.Vet.Mutate.detected
                (o.Vet.Mutate.draws - o.Vet.Mutate.detected);
              List.iter
                (fun l -> Format.printf "survivor: %s@." l)
                o.Vet.Mutate.survivors;
              if o.Vet.Mutate.detected < o.Vet.Mutate.draws then raise Findings
            end
        | None -> (
            (* the same advisory dead-spine hints a [run --policy
               generational] would hand the heap — audited here instead
               of trusted *)
            let hints =
              match
                Framework.Spinelive.Solver.make (Nml.Infer.infer_program s)
              with
              | t -> Framework.Spinelive.dead_spine_params t
              | exception _ -> []
            in
            let ds, summary = Vet.Verify.audit ~hints ~source:s ir in
            match format with
            | Nml.Diagnostic.Human ->
                if ds <> [] then
                  Format.printf "%a@." (Nml.Diagnostic.render Nml.Diagnostic.Human) ds;
                Format.printf "vet: %d annotation(s) audited, %d finding(s)@."
                  summary.Vet.Verify.audited summary.Vet.Verify.findings;
                if summary.Vet.Verify.findings > 0 then raise Findings
            | Nml.Diagnostic.Json ->
                let module J = Nml.Json in
                print_string
                  (J.to_string
                     (J.Obj
                        [
                          ("schema", J.Str "nmlc/vet-v1");
                          ("audited", J.int summary.Vet.Verify.audited);
                          ("findings", J.int summary.Vet.Verify.findings);
                          ( "diagnostics",
                            J.Arr (List.map Nml.Diagnostic.to_json ds) );
                        ]));
                if summary.Vet.Verify.findings > 0 then raise Findings
            | Nml.Diagnostic.Sarif ->
                print_string (Nml.Json.to_string (Nml.Diagnostic.to_sarif ds));
                if summary.Vet.Verify.findings > 0 then raise Findings))
  in
  let format =
    format_arg
      ~doc:"Diagnostic rendering: $(b,human) (default), $(b,json) or $(b,sarif)."
  in
  let mutate =
    Arg.(
      value
      & opt (some int) None
      & info [ "mutate" ] ~docv:"N"
          ~doc:"Mutation-test the verifier: draw N seeded mutations of the optimized \
                program's annotations and require every mutant to be detected.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"Seed for --mutate; equal seeds reproduce runs.")
  in
  let fault =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Check.Harness.No_fault);
               ("arena", Check.Harness.Widen_arena);
               ("dcons", Check.Harness.Misuse_dcons);
             ])
          Check.Harness.No_fault
      & info [ "inject-fault" ] ~docv:"KIND"
          ~doc:"Vet a deliberately broken annotation (arena: widen a stack/block \
                verdict; dcons: misuse a reuse verdict) instead of the optimizer's \
                output.  Expected to exit nonzero.")
  in
  Cmd.v
    (Cmd.info "vet"
       ~doc:"Independently re-verify the optimizer's storage annotations, reporting \
             violated proof obligations as source-located diagnostics")
    Term.(
      const run $ file_arg $ inline_arg $ options_term $ format $ mutate $ seed $ fault)

let lint_cmd =
  let known_codes () = String.concat ", " (Lint.Registry.codes ()) in
  let parse_code flag c =
    let c = String.uppercase_ascii c in
    match Lint.Registry.find c with
    | Some _ -> c
    | None ->
        failwith
          (Printf.sprintf "%s: unknown rule %s (known rules: %s)" flag c
             (known_codes ()))
  in
  let parse_severity spec =
    match String.index_opt spec '=' with
    | None ->
        failwith
          (Printf.sprintf "--severity: expected CODE=LEVEL, got %s" spec)
    | Some i -> (
        let code = parse_code "--severity" (String.sub spec 0 i) in
        let level = String.sub spec (i + 1) (String.length spec - i - 1) in
        match Nml.Diagnostic.severity_of_name (String.lowercase_ascii level) with
        | Some s -> (code, s)
        | None ->
            failwith
              (Printf.sprintf
                 "--severity: level must be error, warning or note, got %s" level))
  in
  let run file inline format only disable severities fault =
    handle ~format (fun () ->
        let name, src = read_input file inline in
        let config =
          {
            Lint.Registry.only = List.map (parse_code "--only") only;
            disabled = List.map (parse_code "--disable") disable;
            severities = List.map parse_severity severities;
          }
        in
        let o = Lint.Engine.run ~config ~fault ~file:name src in
        let n = List.length o.Lint.Engine.findings in
        (match format with
        | Nml.Diagnostic.Human ->
            if o.Lint.Engine.findings <> [] then
              Format.printf "%a@."
                (Nml.Diagnostic.render Nml.Diagnostic.Human)
                o.Lint.Engine.findings;
            Format.printf "lint: %d finding(s), %d suppressed@." n
              o.Lint.Engine.suppressed
        | Nml.Diagnostic.Json ->
            let module J = Nml.Json in
            print_string
              (J.to_string
                 (J.Obj
                    [
                      ("schema", J.Str "nmlc/lint-v1");
                      ("findings", J.int n);
                      ("suppressed", J.int o.Lint.Engine.suppressed);
                      ( "diagnostics",
                        J.Arr (List.map Nml.Diagnostic.to_json o.Lint.Engine.findings)
                      );
                    ]))
        | Nml.Diagnostic.Sarif ->
            print_string
              (Nml.Json.to_string
                 (Nml.Diagnostic.to_sarif
                    ~rules:(Lint.Registry.sarif_rules ())
                    o.Lint.Engine.findings)));
        if n > 0 then raise Findings)
  in
  let format =
    format_arg
      ~doc:"Finding rendering: $(b,human) (default), $(b,json) or $(b,sarif) \
            (SARIF 2.1.0, for code-scanning upload)."
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"CODE"
          ~doc:"Run only this rule (repeatable), e.g. $(b,--only LINT001).")
  in
  let disable =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"CODE" ~doc:"Disable this rule (repeatable).")
  in
  let severities =
    Arg.(
      value & opt_all string []
      & info [ "severity" ] ~docv:"CODE=LEVEL"
          ~doc:"Override a rule's severity (repeatable), e.g. \
                $(b,--severity LINT002=warning).")
  in
  let fault =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Lint.Rule.No_fault);
               ("invariance", Lint.Rule.Corrupt_invariance);
               ("sharing", Lint.Rule.Corrupt_sharing);
             ])
          Lint.Rule.No_fault
      & info [ "inject-fault" ] ~docv:"KIND"
          ~doc:"Seed a lie an audit rule must catch: $(b,invariance) corrupts one \
                escape verdict before the Theorem-1 comparison so that $(b,LINT003) \
                must fire (needs a definition used at two or more instances); \
                $(b,sharing) makes one reuse candidate's sharing verdict \
                spine-shared so that $(b,LINT008) must fire (needs a reuse \
                candidate).  The cache is bypassed.  Expected to exit nonzero.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Escape-informed lint rules: missed reuse opportunities, heap-doomed \
             results, Theorem-1 instance-invariance self-audit, dead spines, unused \
             bindings and unreachable branches, with inline \
             $(b,(* nmlc-disable ... *)) suppressions")
    Term.(
      const run $ file_arg $ inline_arg $ format $ only $ disable $ severities $ fault)

let serve_cmd =
  let module J = Nml.Json in
  (* the one-shot client: connect, send one frame, print the response *)
  let client ~socket ~call ~file ~raw ~deadline_ms =
    let payload =
      match raw with
      | Some s -> s
      | None -> (
          match call with
          | None -> failwith "give --call METHOD or --raw PAYLOAD with --connect"
          | Some m ->
              if Serve.Protocol.meth_of_name m = None then
                failwith (Printf.sprintf "unknown method %S" m);
              let params =
                (match file with Some f -> [ ("path", J.Str f) ] | None -> [])
                @
                match deadline_ms with
                | Some d -> [ ("deadline_ms", J.int d) ]
                | None -> []
              in
              J.to_string
                (J.Obj
                   ([ ("id", J.int 1); ("method", J.Str m) ]
                   @ if params = [] then [] else [ ("params", J.Obj params) ])))
    in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
            failwith
              (Printf.sprintf "cannot connect to %s: %s" socket
                 (Unix.error_message e)));
        if not (Serve.Frame.write fd payload) then
          failwith "the server closed the connection before the request was sent";
        match Serve.Frame.read fd with
        | Error e ->
            failwith
              (Format.asprintf "no response: %a" Serve.Frame.pp_error e)
        | Ok resp ->
            print_string resp;
            let failed =
              match J.parse resp with
              | exception J.Parse_error _ -> false
              | json -> J.member "error" json <> None
            in
            if failed then raise Findings)
  in
  let run socket stdio jobs queue deadline_ms max_frame_kb cache_dir no_cache
      fault connect call file raw quiet =
    handle (fun () ->
        match connect with
        | Some sock -> client ~socket:sock ~call ~file ~raw ~deadline_ms
        | None ->
            let store =
              if no_cache then None
              else Some (Cache.Store.create ~memory:true ~write_back:true cache_dir)
            in
            (match store with
            | Some s -> ignore (Cache.Store.cleanup_tmp s)
            | None -> ());
            let transport =
              if stdio then Serve.Server.Stdio
              else Serve.Server.Socket (Option.value socket ~default:".nmlc.sock")
            in
            let cfg =
              {
                (Serve.Server.default_config transport) with
                Serve.Server.jobs =
                  (match jobs with
                  | Some n -> max 1 n
                  | None -> Domain.recommended_domain_count ());
                queue_cap = max 1 queue;
                default_deadline_ms = Option.value deadline_ms ~default:30_000;
                max_frame = max 1 max_frame_kb * 1024;
                store;
                fault;
                quiet;
              }
            in
            let code = Serve.Server.run cfg in
            if code <> 0 then exit code)
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix socket to listen on (default: $(b,.nmlc.sock)).")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve a single session on stdin/stdout instead of a socket.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: the machine's recommended domain count).")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded request queue capacity; beyond it the oldest queued request \
                is shed with $(b,SRV005) and a retry-after hint.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Server: default per-request deadline (default 30000; 0 disables). \
                Client: the $(b,deadline_ms) param sent with --call.")
  in
  let max_frame_kb =
    Arg.(
      value & opt int 4096
      & info [ "max-frame-kb" ] ~docv:"KB"
          ~doc:"Inbound frame size limit; larger frames are refused with $(b,SRV003).")
  in
  let cache_dir =
    Arg.(
      value
      & opt string ".nmlc-cache"
      & info [ "cache" ] ~docv:"DIR" ~doc:"Persistent summary cache directory.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Serve cold: no in-memory tier, no persistent cache.")
  in
  let fault =
    Arg.(
      value
      & opt
          (enum (List.map (fun f -> (Serve.Fault.to_string f, f)) Serve.Fault.all))
          Serve.Fault.None_
      & info [ "inject-fault" ] ~docv:"KIND"
          ~doc:"Deliberately break one layer of the daemon ($(b,worker-crash), \
                $(b,slow-request), $(b,malformed-frame), $(b,cache-corrupt), \
                $(b,oom)) to exercise the supervision, deadline and self-heal \
                machinery.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Run as a one-shot client against the server at $(docv): send one \
                request, print the response, exit 0 on a result and 1 on an error \
                response.")
  in
  let call =
    Arg.(
      value
      & opt (some string) None
      & info [ "call" ] ~docv:"METHOD"
          ~doc:"Client: the method to call ($(b,analyze), $(b,vet), $(b,lint), \
                $(b,status), $(b,shutdown)).")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"Client: the program file to analyze.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"PAYLOAD"
          ~doc:"Client: send $(docv) verbatim as the request payload (for testing \
                the protocol-error paths).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the stderr lifecycle log.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"A fault-tolerant analysis daemon: framed JSON-RPC over a Unix socket \
             or stdio, the summary cache held hot in memory, per-request deadlines, \
             bounded-queue load shedding, supervised worker domains and a clean \
             signal drain")
    Term.(
      const run $ socket $ stdio $ jobs $ queue $ deadline_ms $ max_frame_kb
      $ cache_dir $ no_cache $ fault $ connect $ call $ file $ raw $ quiet)

let () =
  let doc = "escape analysis on lists (Park & Goldberg, PLDI 1992)" in
  let info = Cmd.info "nmlc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            parse_cmd; typecheck_cmd; eval_cmd; analyze_cmd; batch_cmd; mono_cmd;
            optimize_cmd; run_cmd; compile_cmd; check_cmd; vet_cmd; lint_cmd;
            serve_cmd;
          ]))
