(** Mutation testing of the verifier.

    A mutation point is a small, deliberately unsound (or undeclared)
    edit of an annotated program: retargeting an allocation site to an
    arena nobody opens, removing an arena delimiter that sites still
    target, flipping a destructive site's source to an unguarded
    parameter, or injecting a destructive site into a definition the
    optimizer did not claim.  Each mutant must make {!Verify.audit}
    report at least one finding — a surviving mutant is a verifier bug.

    Enumeration is deterministic (pre-order site numbering), and a
    campaign draws points with a seeded PRNG so runs are reproducible. *)

type point = {
  label : string;  (** stable human description of the edit *)
  mutant : Runtime.Ir.expr Lazy.t;
}

val points : source:Nml.Surface.t -> Runtime.Ir.expr -> point list
(** Every applicable mutation point of the program, in a deterministic
    order.  Only edits guaranteed to be unsound (no equivalent mutants)
    are proposed. *)

type outcome = {
  points : int;
  draws : int;
  detected : int;
  survivors : string list;  (** labels of undetected mutants *)
}

val campaign :
  ?seed:int ->
  count:int ->
  source:Nml.Surface.t ->
  Runtime.Ir.expr ->
  outcome
(** [campaign ~count ~source ir] draws [count] points (with replacement)
    from {!points} and audits each mutant.  [seed] defaults to 0. *)
