(** Definition-level call graph of a typed program, plus the generic
    strongly-connected-component machinery the fixpoint solver schedules
    with.

    A top-level definition [f] {e references} a definition [g] when [g]
    occurs free in [f]'s right-hand side.  The condensation of this graph
    into SCCs gives the order in which a demand-driven solver can settle
    definitions: a component is solvable once every component it
    references is stable, and a definition outside any cycle needs
    exactly one evaluation. *)

module Scc : sig
  val compute : n:int -> succs:(int -> int list) -> int list list
  (** Tarjan's algorithm over nodes [0..n-1].  Components are returned
      {e dependencies first}: reading [succs v] as "v depends on", every
      component appears after all components it (transitively) depends
      on, so processing the list in order visits each node only after its
      out-of-component dependencies.  Successors outside [0..n-1] are
      ignored. *)
end

type t

val of_program : Infer.program -> t
(** Extracts the reference graph from the simplest monotyped instance of
    every definition (references are instance-independent). *)

val defs : t -> string list
(** Definition names, in program order. *)

val refs : t -> string -> string list
(** Top-level definitions referenced by a definition's right-hand side
    (including itself when directly recursive); [[]] for unknown names. *)

val sccs : t -> string list list
(** The condensation, dependencies first (see {!Scc.compute}). *)

val is_recursive : t -> string -> bool
(** Whether the definition takes part in any cycle: directly recursive,
    or a member of a non-singleton component. *)
