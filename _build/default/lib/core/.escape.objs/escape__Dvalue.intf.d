lib/core/dvalue.mli: Besc Format Nml
