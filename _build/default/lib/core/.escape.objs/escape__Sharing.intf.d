lib/core/sharing.mli: Fixpoint Format Nml
