type annotation = {
  func : string;
  arg : int;
  levels : int;
  arena : int;
  loc : Nml.Loc.t;
}
type report = { annotations : annotation list }

let annotate t surface =
  let ir, r = Annotate.annotate ~stack:true ~block:false t surface in
  let annotations =
    List.map
      (fun (a : Annotate.stack_annotation) ->
        {
          func = a.Annotate.func;
          arg = a.Annotate.arg;
          levels = a.Annotate.levels;
          arena = a.Annotate.arena;
          loc = a.Annotate.loc;
        })
      r.Annotate.stack
  in
  (ir, { annotations })
