(** Recursive-descent parser for the [nml] surface syntax.

    Grammar (operator precedence from loosest to tightest):

    {v
      program  ::= expr
      expr     ::= lambda(x). expr  |  \x. expr  |  fun x1 ... xn -> expr
                 | if expr then expr else expr
                 | let x p1 ... pn = expr in expr
                 | letrec bind (; bind)* [;] in expr
                 | or-expr
      bind     ::= x p1 ... pn = expr
      or-expr  ::= and-expr (or and-expr)*
      and-expr ::= cmp-expr (and cmp-expr)*
      cmp-expr ::= cons-expr ((= | <> | < | <= | > | >=) cons-expr)?
      cons-expr::= add-expr (:: cons-expr)?
      add-expr ::= [-] mul-expr ((+ | -) mul-expr)*
      mul-expr ::= app-expr (( * | div | mod) app-expr)*
      app-expr ::= atom atom*
      atom     ::= int | true | false | nil | ident | not atom
                 | ( expr ) | [ expr ((,|;) expr)* ] | [ ]
    v}

    Sugar is eliminated during parsing: [let] becomes a redex,
    [f x1 ... xn = e] becomes nested lambdas, list literals become [cons]
    chains, operators become applications of primitive constants.  The
    identifiers [cons], [car], [cdr] and [null] denote primitives unless
    shadowed by an enclosing binder. *)

exception Error of Loc.t * string

val parse : ?file:string -> string -> Ast.program
(** Parses a complete program; input must be a single expression followed
    by end of file.  @raise Error on syntax errors, and propagates
    {!Lexer.Error}. *)

val parse_expr : ?file:string -> string -> Ast.expr
(** Alias of {!parse} (a program is an expression). *)
