lib/core/exact.mli: Besc Nml
