let probes ~d ty =
  Dvalue.ensure_d d;
  Dvalue.probes ty

let equal ~d a b =
  Dvalue.ensure_d d;
  Dvalue.equal a b

let leq ~d a b =
  Dvalue.ensure_d d;
  Dvalue.leq a b
