lib/nml/mono.ml: Ast Hashtbl Infer List Option Printf Queue Set String Surface Tast Ty
