lib/optimize/blockalloc.mli: Escape Nml Runtime
