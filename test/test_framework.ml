(* Tests for the pluggable analysis framework (PR8).

   - Differential: the functorized escape solver ([Framework.Solver.Make
     (Espec)], what [Escape.Fixpoint] now is) must agree with the frozen
     pre-framework solver ([Support.Legacy_fixpoint]) on verdicts AND on
     solver behaviour (entry evaluations, passes, chain bound) — on the
     builtin corpus and a 40-program random corpus.
   - Golden files: the rendered report and solver-stats block of every
     example program must be byte-identical to the pre-refactor captures
     in [test/golden/].
   - Lattice laws per registered domain (escape's B_e, usage's bits,
     spine-liveness' bits): partial order, join laws, widening is an
     upper bound.  The bit domains are finite, so the laws are checked
     exhaustively; B_e additionally by qcheck over random chain pairs.
   - Verdict witnesses, firing and non-firing, for each new Spec.
   - Cache: per-analysis key namespacing, old-schema/corrupt records are
     clean misses, warm reruns of every registered analysis perform zero
     evaluations.
   - The reduced product agrees with (is no coarser than) the component
     analyses run alone. *)

module Fix = Escape.Fixpoint
module Legacy = Legacy_fixpoint
module An = Escape.Analysis
module B = Escape.Besc
module D = Escape.Dvalue
module Usage = Framework.Usage
module Spinelive = Framework.Spinelive
module Product = Analyses.Product
module Registry = Analyses.Registry
module Engine = Cache.Engine
module Examples = Nml.Examples
module Ty = Nml.Ty

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let infer src = Nml.Infer.infer_program (Nml.Surface.of_string src)

(* ---- differential: functorized vs frozen legacy escape solver ------------- *)

(* The global test, run by hand so it works against either solver: apply
   the definition's settled value to worst-case arguments and read the
   total escape off the result. *)
let hand_verdicts ~value ~instance_ty ~with_state ~schemes =
  List.concat_map
    (fun (name, _) ->
      let ty = instance_ty name in
      let m = Ty.arity ty in
      let v = value name ty in
      with_state (fun () ->
          List.init m (fun i ->
              let args =
                List.mapi
                  (fun j aty -> if j = i then D.interesting aty else D.boring aty)
                  (Ty.arg_tys ty m)
              in
              (name, i + 1, B.to_string (D.total_esc (D.apply_all v args)))))
    )
    schemes

let legacy_run src =
  let t = Legacy.of_source src in
  let prog = Legacy.program t in
  let verdicts =
    hand_verdicts
      ~value:(fun name ty -> Legacy.value t name (Some ty))
      ~instance_ty:(Legacy.instance_ty t)
      ~with_state:(fun f -> Legacy.with_state t f)
      ~schemes:prog.Nml.Infer.schemes
  in
  (verdicts, Legacy.evaluations t, Legacy.passes t, Legacy.d t)

let framework_run src =
  let t = Fix.of_source src in
  let prog = Fix.program t in
  let verdicts =
    hand_verdicts
      ~value:(fun name ty -> Fix.value t name (Some ty))
      ~instance_ty:(Fix.instance_ty t)
      ~with_state:(fun f -> Fix.with_state t f)
      ~schemes:prog.Nml.Infer.schemes
  in
  (verdicts, Fix.evaluations t, Fix.passes t, Fix.d t)

let check_against_legacy src =
  let lv, le, lp, ld = legacy_run src in
  let fv, fe, fp, fd = framework_run src in
  checki "same verdict count" (List.length lv) (List.length fv);
  List.iter2
    (fun (n, i, a) (n', i', b) ->
      checks "same def order" n n';
      checki "same arg" i i';
      checks (Printf.sprintf "G(%s, %d)" n i) a b)
    lv fv;
  checki "same entry evaluations" le fe;
  checki "same passes" lp fp;
  checki "same chain bound" ld fd

let legacy_units =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("matches-legacy-" ^ name) `Quick (fun () ->
          check_against_legacy src))
    Check.Harness.builtin_corpus
  @ [
      Alcotest.test_case "matches-legacy-random-corpus" `Slow (fun () ->
          let rand = Random.State.make [| 20260809 |] in
          for _ = 1 to 40 do
            let src = QCheck.Gen.generate1 ~rand Gen.gen_any_program in
            check_against_legacy src
          done);
    ]

(* ---- golden files --------------------------------------------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* under [dune runtest] the cwd is the test directory; under [dune exec]
   from the project root it is the root — resolve either way *)
let golden_dir = if Sys.file_exists "golden" then "golden" else "test/golden"

let examples_dir =
  let local = Filename.concat (Filename.concat ".." "examples") "programs" in
  if Sys.file_exists local then local else Filename.concat "examples" "programs"

(* the solver block of a golden .stats capture: the lines between
   "-- solver --" and the storage section *)
let solver_block text =
  let lines = String.split_on_char '\n' text in
  let rec after = function
    | [] -> []
    | "-- solver --" :: rest -> rest
    | _ :: rest -> after rest
  in
  let rec until acc = function
    | [] -> List.rev acc
    | l :: _ when String.length l >= 2 && String.sub l 0 2 = "--" -> List.rev acc
    | l :: rest -> until (l :: acc) rest
  in
  String.concat "\n" (until [] (after lines))

let golden_units =
  let programs =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".nml")
    |> List.sort String.compare
  in
  List.map
    (fun f ->
      let base = Filename.chop_suffix f ".nml" in
      Alcotest.test_case ("golden-" ^ base) `Quick (fun () ->
          let src = read_file (Filename.concat examples_dir f) in
          let t = Fix.make (infer src) in
          let report = Format.asprintf "%a@." Escape.Report.program t in
          checks "report byte-identical"
            (read_file (Filename.concat golden_dir (base ^ ".report")))
            report;
          let stats = Format.asprintf "%a" Fix.pp_stats (Fix.stats t) in
          checks "solver stats byte-identical"
            (solver_block (read_file (Filename.concat golden_dir (base ^ ".stats"))))
            stats))
    programs

(* ---- lattice laws --------------------------------------------------------- *)

let laws (type a) name ~(elements : a list) ~(leq : a -> a -> bool)
    ~(join : a -> a -> a) ~(equal : a -> a -> bool) ~(bot : a) ~(top : a) =
  let all2 f = List.for_all (fun a -> List.for_all (f a) elements) elements in
  let all3 f =
    List.for_all
      (fun a -> List.for_all (fun b -> List.for_all (f a b) elements) elements)
      elements
  in
  checkb (name ^ ": leq reflexive") true (List.for_all (fun a -> leq a a) elements);
  checkb (name ^ ": leq antisymmetric") true
    (all2 (fun a b -> (not (leq a b && leq b a)) || equal a b));
  checkb (name ^ ": leq transitive") true
    (all3 (fun a b c -> (not (leq a b && leq b c)) || leq a c));
  checkb (name ^ ": join commutative") true
    (all2 (fun a b -> equal (join a b) (join b a)));
  checkb (name ^ ": join associative") true
    (all3 (fun a b c -> equal (join (join a b) c) (join a (join b c))));
  checkb (name ^ ": join idempotent") true
    (List.for_all (fun a -> equal (join a a) a) elements);
  checkb (name ^ ": join is an upper bound") true
    (all2 (fun a b -> leq a (join a b) && leq b (join a b)));
  checkb (name ^ ": join is the least upper bound") true
    (all3 (fun a b c -> (not (leq a c && leq b c)) || leq (join a b) c));
  checkb (name ^ ": bottom is least") true (List.for_all (leq bot) elements);
  checkb (name ^ ": top is greatest") true
    (List.for_all (fun a -> leq a top) elements)

let bits2 =
  [ (false, false); (true, false); (false, true); (true, true) ]

let usage_flags =
  List.map (fun (dep, use) -> { Usage.Flags.dep; use }) bits2

let spinelive_flags =
  List.concat_map
    (fun (dep, head) ->
      [
        { Spinelive.Flags.dep; head; tail = false };
        { Spinelive.Flags.dep; head; tail = true };
      ])
    bits2

let lattice_units =
  [
    Alcotest.test_case "besc-laws-exhaustive" `Quick (fun () ->
        List.iter
          (fun d ->
            laws
              (Printf.sprintf "B_e(d=%d)" d)
              ~elements:(B.all ~d) ~leq:B.leq ~join:B.join ~equal:B.equal
              ~bot:B.bottom ~top:(B.top ~d))
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "usage-flag-laws" `Quick (fun () ->
        laws "usage" ~elements:usage_flags ~leq:Usage.Flags.leq
          ~join:Usage.Flags.join ~equal:Usage.Flags.equal ~bot:Usage.Flags.bot
          ~top:Usage.Flags.top);
    Alcotest.test_case "spinelive-flag-laws" `Quick (fun () ->
        laws "spine-liveness" ~elements:spinelive_flags ~leq:Spinelive.Flags.leq
          ~join:Spinelive.Flags.join ~equal:Spinelive.Flags.equal
          ~bot:Spinelive.Flags.bot ~top:Spinelive.Flags.top);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"besc-join-monotone-qcheck"
         QCheck.(
           pair (pair (int_range 0 4) (int_range 0 4)) (pair (int_range 0 4) (int_range 0 4)))
         (fun ((a, b), (c, d)) ->
           (* join is monotone in both arguments over the chain *)
           let v i j = if i = 0 then B.zero else B.one j in
           let x = v (min a 1) b and y = v (min c 1) d in
           B.leq x (B.join x y) && B.leq y (B.join x y)));
  ]

(* ---- verdict witnesses ---------------------------------------------------- *)

let witness_src =
  "letrec append l m = if null l then m else cons (car l) (append (cdr l) m);\n\
  \       head l = car l;\n\
  \       len l = if null l then 0 else 1 + len (cdr l);\n\
  \       ignore2 x y = cons x nil\n\
   in append (head (cons (cons 1 nil) nil)) (cons (len (cons 2 nil)) (ignore2 3 4))"

let usage_v name arg =
  let t = Usage.Solver.make (infer witness_src) in
  Usage.verdict_name (Usage.arg_verdict t name ~arg)

let live_v name arg =
  let t = Spinelive.Solver.make (infer witness_src) in
  Spinelive.verdict_name (Spinelive.arg_verdict t name ~arg)

let product_v name arg =
  let t = Product.Solver.make (infer witness_src) in
  Product.verdict_name (Product.arg_report t name ~arg).Product.a_verdict

let witness_units =
  [
    Alcotest.test_case "usage-witnesses" `Quick (fun () ->
        checks "U(append,1)" "used" (usage_v "append" 1);
        checks "U(append,2)" "carried" (usage_v "append" 2);
        checks "U(head,1)" "used" (usage_v "head" 1);
        checks "U(len,1)" "consumed" (usage_v "len" 1);
        checks "U(ignore2,1)" "carried" (usage_v "ignore2" 1);
        checks "U(ignore2,2)" "unused" (usage_v "ignore2" 2));
    Alcotest.test_case "spinelive-witnesses" `Quick (fun () ->
        checks "L(append,1)" "spine-live" (live_v "append" 1);
        checks "L(append,2)" "live" (live_v "append" 2);
        checks "L(len,1)" "spine-live" (live_v "len" 1);
        checks "L(ignore2,2)" "dead" (live_v "ignore2" 2));
    Alcotest.test_case "spinelive-head-only-and-hints" `Quick (fun () ->
        (* head : 'a list -> 'a at its simplest instance keeps only the
           head cell; dead_spine_params surfaces it to the heap layer *)
        let t = Spinelive.Solver.make (infer witness_src) in
        checks "L(head,1)" "head-only"
          (Spinelive.verdict_name (Spinelive.arg_verdict t "head" ~arg:1));
        let hints = Spinelive.dead_spine_params t in
        checkb "head's parameter is hinted" true
          (match List.assoc_opt "head" hints with
          | Some idxs -> List.mem 1 idxs
          | None -> false);
        checkb "append is not hinted" true (List.assoc_opt "append" hints = None);
        let config = { Runtime.Heap.generational with Runtime.Heap.liveness_hints = hints } in
        checkb "heap reads the hint" true
          (Runtime.Heap.hinted_dead_spine config ~fname:"head" ~arg:1);
        checkb "heap rejects unhinted" false
          (Runtime.Heap.hinted_dead_spine config ~fname:"append" ~arg:1);
        checks "hints leave the config label alone" "gen/nursery=1024"
          (Runtime.Heap.config_name config));
    Alcotest.test_case "product-witnesses" `Quick (fun () ->
        checks "P(append,1)" "spine-scratch" (product_v "append" 1);
        checks "P(append,2)" "retained" (product_v "append" 2);
        checks "P(len,1)" "scratch" (product_v "len" 1);
        checks "P(ignore2,2)" "dead" (product_v "ignore2" 2));
    Alcotest.test_case "product-reduction-refines" `Quick (fun () ->
        (* ignore2 carries x whole: usage says Carried; escape says <1,0>.
           Neither side reduces.  But y is Unused, so even if the escape
           side over-approximated, the reduced escape component is <0,0>. *)
        let t = Product.Solver.make (infer witness_src) in
        let a = Product.arg_report t "ignore2" ~arg:2 in
        checks "reduced escape of an unused arg" "<0,0>" (B.to_string a.Product.a_esc));
    Alcotest.test_case "lint007-fires-and-stays-quiet" `Quick (fun () ->
        let fire =
          "letrec head l = car l in head (cons 1 (cons 2 (cons 3 nil)))"
        in
        let quiet =
          "letrec len l = if null l then 0 else 1 + len (cdr l)\n\
           in len (cons 1 (cons 2 nil))"
        in
        let codes src =
          let o = Lint.Engine.run ~file:"<test>" src in
          List.filter
            (fun d -> String.equal d.Nml.Diagnostic.code "LINT007")
            o.Lint.Engine.findings
        in
        checki "firing witness" 1 (List.length (codes fire));
        checki "non-firing witness" 0 (List.length (codes quiet)));
  ]

(* ---- sharing: abstract witnesses and the concrete heap oracle -------------- *)

module Alias = Framework.Alias
module Ir = Runtime.Ir
module M = Runtime.Machine
module Vm = Backend.Vm

let alias_v ?inst name arg =
  let t = Alias.Solver.make (infer witness_src) in
  Alias.verdict_name (Alias.arg_verdict t ?inst name ~arg)

(* evaluate [let a = input in (g a, a)] so the call's result and its
   argument live in the same store, then read both roots back *)
let oracle_ir defs g input =
  let pair x y = Ir.App (Ir.App (Ir.Prim Nml.Ast.Pair, x), y) in
  Ir.Letrec
    ( defs,
      Ir.App
        ( Ir.Lam
            ("$oracle", pair (Ir.App (Ir.Var g, Ir.Var "$oracle")) (Ir.Var "$oracle")),
          input ) )

let machine_roots prog =
  let m = M.create () in
  match M.eval m prog with
  | M.Wpair a ->
      let res, arg, _ = M.cell_words m a in
      (Share_oracle.machine m, res, arg)
  | _ -> Alcotest.fail "oracle main did not produce a pair"

let vm_roots prog =
  let v = Vm.create () in
  match Vm.run_ir v prog with
  | Vm.Pair a ->
      let res, arg, _ = Vm.cell_values v a in
      (Share_oracle.vm v, res, arg)
  | _ -> Alcotest.fail "oracle main did not produce a pair"

let alias_units =
  [
    Alcotest.test_case "sharing-witnesses" `Quick (fun () ->
        (* append retains m's spine in its result but rebuilds l's *)
        checks "S(append,1)" "unshared" (alias_v "append" 1);
        checks "S(append,2)" "spine-shared" (alias_v "append" 2);
        (* the verdict is instance-indexed: at [int list -> int] head's
           element owns no cells, at [int list list -> int list] or a
           pair-element instance the element is the argument's heap *)
        checks "S(head,1) @ int list" "unshared" (alias_v "head" 1);
        checks "S(head,1) @ int list list" "spine-shared"
          (alias_v
             ~inst:(Ty.Arrow (Ty.List (Ty.List Ty.Int), Ty.List Ty.Int))
             "head" 1);
        checks "S(head,1) @ (int*int) list" "spine-shared"
          (alias_v
             ~inst:(Ty.Arrow (Ty.List (Ty.Prod (Ty.Int, Ty.Int)), Ty.Prod (Ty.Int, Ty.Int)))
             "head" 1);
        (* len consumes l down to a base value *)
        checks "S(len,1)" "unshared" (alias_v "len" 1);
        checks "S(ignore2,1)" "unshared" (alias_v "ignore2" 1));
    Alcotest.test_case "oracle-sees-real-sharing" `Quick (fun () ->
        (* the concrete walker is not vacuous: a cons onto the argument
           shares every argument cell with the result, a structural copy
           shares none — on both backends *)
        let ir_of src =
          match Ir.of_program (Nml.Surface.of_string src) with
          | Ir.Letrec (ds, Ir.App (Ir.Var g, input)) -> oracle_ir ds g input
          | _ -> Alcotest.fail "unexpected program shape"
        in
        let extend = ir_of "letrec f l = cons 1 l in f [2, 3]" in
        let copy =
          ir_of
            "letrec f l = if null l then nil else cons (car l) (f (cdr l)) \
             in f [2, 3]"
        in
        let overlap_card (c, res, arg) =
          Share_oracle.IS.cardinal (Share_oracle.overlap c res arg)
        in
        checki "machine extend overlap" 2 (overlap_card (machine_roots extend));
        checki "machine copy overlap" 0 (overlap_card (machine_roots copy));
        checki "vm extend overlap" 2 (overlap_card (vm_roots extend));
        checki "vm copy overlap" 0 (overlap_card (vm_roots copy)));
  ]

let qcheck_sharing_oracle =
  QCheck.Test.make ~count:250
    ~name:"sharing-verdicts-over-approximate-the-heap"
    (QCheck.make Gen.gen_any_program ~print:Fun.id)
    (fun src ->
      match
        let s = Nml.Surface.of_string src in
        let prog = Nml.Infer.infer_program s in
        let t = Alias.Solver.make prog in
        (* judge [f] at the ground instance of the actual call, the one
           the concrete run below executes — the generated [f] may well
           generalize (['a list -> 'a list]) while running over pairs *)
        let inst =
          match (Nml.Infer.main_ground prog).Nml.Tast.desc with
          | Nml.Tast.App (fe, _) -> fe.Nml.Tast.ty
          | _ -> raise Exit
        in
        let verdict = Alias.arg_verdict t ~inst "f" ~arg:1 in
        match Ir.of_program s with
        | Ir.Letrec (defs, Ir.App (Ir.Var g, input)) ->
            let prog = oracle_ir defs g input in
            let probe (c, res, arg) =
              let ov = Share_oracle.overlap c res arg in
              let sound =
                match verdict with
                | Alias.Unshared -> Share_oracle.IS.is_empty ov
                | Alias.Shared_elem | Alias.Shared_spine -> true
              in
              (sound, Share_oracle.IS.cardinal ov, Share_oracle.shared_count c res)
            in
            let okm, novm, nshm = probe (machine_roots prog) in
            let okv, novv, nshv = probe (vm_roots prog) in
            (* the verdict over-approximates on both backends, and the
               backends agree on the concrete sharing structure *)
            okm && okv && novm = novv && nshm = nshv
        | _ -> raise Exit
      with
      | r -> r
      | exception _ -> QCheck.assume_fail ())

(* ---- product consistency with the component analyses ---------------------- *)

let usage_rank = function
  | Usage.Unused -> 0
  | Usage.Carried | Usage.Consumed -> 1
  | Usage.Used -> 2

let check_product_consistency src =
  let prog = infer src in
  let pt = Product.Solver.make prog in
  let ut = Usage.Solver.make prog in
  let et = Fix.make prog in
  List.iter
    (fun (name, _) ->
      let m = Ty.arity (Product.Solver.instance_ty pt name) in
      for i = 1 to m do
        let a = Product.arg_report pt name ~arg:i in
        let u_alone = Usage.arg_verdict ut name ~arg:i in
        let e_alone = (An.global et name ~arg:i).An.esc in
        (* the reduced components are never coarser than the analyses
           run alone *)
        checkb
          (Printf.sprintf "usage component of (%s,%d) refines" name i)
          true
          (usage_rank a.Product.a_usage <= usage_rank u_alone);
        checkb
          (Printf.sprintf "escape component of (%s,%d) refines" name i)
          true
          (B.leq a.Product.a_esc e_alone)
      done)
    prog.Nml.Infer.schemes

let product_units =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("product-refines-" ^ name) `Quick (fun () ->
          check_product_consistency src))
    Check.Harness.builtin_corpus

(* ---- cache: namespacing, schema, warm-run identity ------------------------ *)

let tmp_counter = ref 0

let with_dir prefix f =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nmlc-fw-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir d 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm_rf d with Sys_error _ -> ()) (fun () -> f d)

let keys_of ?analysis prog =
  List.map fst (Cache.Skey.sccs (Cache.Skey.of_program ?analysis prog))

let cache_units =
  [
    Alcotest.test_case "keys-deterministic" `Quick (fun () ->
        let prog () = infer Examples.partition_sort_program in
        checkb "same program, same keys" true (keys_of (prog ()) = keys_of (prog ())));
    Alcotest.test_case "keys-namespaced-per-analysis" `Quick (fun () ->
        let prog = infer Examples.partition_sort_program in
        let escape = keys_of prog in
        checkb "escape default namespace" true (escape = keys_of ~analysis:"escape" prog);
        List.iter
          (fun a ->
            let other = keys_of ~analysis:a prog in
            checkb (a ^ " keys all differ from escape") true
              (List.for_all (fun k -> not (List.mem k escape)) other))
          [ "usage"; "spine-liveness"; "escape-x-usage"; "sharing" ]);
    Alcotest.test_case "schema-is-v2" `Quick (fun () ->
        checks "skey schema" "nmlc/summary-cache-v2" Cache.Skey.schema_version);
    Alcotest.test_case "old-schema-record-is-a-clean-miss" `Quick (fun () ->
        (* a record with the v1 stamp (and no analysis field) must be
           rejected by the decoder, not mis-replayed *)
        with_dir "v1" @@ fun dir ->
        let prog = infer Examples.rev_program in
        let store = Cache.Store.create dir in
        let keys = Cache.Skey.sccs (Cache.Skey.of_program prog) in
        let module J = Nml.Json in
        (* plant stale records under the *current* keys, as an interrupted
           upgrade could: old stamp, old shape *)
        List.iter
          (fun (key, members) ->
            Cache.Store.save store ~key
              (J.Obj
                 [
                   ("schema", J.Str "nmlc/summary-cache-v1");
                   ("key", J.Str key);
                   ( "defs",
                     J.Arr
                       (List.map
                          (fun m ->
                            J.Obj
                              [
                                ("name", J.Str m);
                                ("inst", J.Str "int list -> int list");
                                ("args", J.Arr []);
                              ])
                          members) );
                 ]))
          keys;
        ignore (Cache.Store.flush store);
        let o = Cache.Summary.analyze ~store prog in
        checki "every SCC misses" (List.length keys) o.Cache.Summary.scc_misses;
        checkb "a real solve happened" true (o.Cache.Summary.evaluations > 0);
        (* and the store has healed: the rerun is fully warm *)
        let warm = Cache.Summary.analyze ~store prog in
        checki "healed store serves every SCC" (List.length keys)
          warm.Cache.Summary.scc_hits;
        checki "zero evaluations when warm" 0 warm.Cache.Summary.evaluations);
    Alcotest.test_case "corrupt-record-is-a-clean-miss" `Quick (fun () ->
        with_dir "corrupt" @@ fun dir ->
        let prog = infer Examples.rev_program in
        let store = Cache.Store.create dir in
        let keys = Cache.Skey.sccs (Cache.Skey.of_program ~analysis:"usage" prog) in
        let module J = Nml.Json in
        List.iter
          (fun (key, _) ->
            Cache.Store.save store ~key (J.Obj [ ("garbage", J.Bool true) ]))
          keys;
        ignore (Cache.Store.flush store);
        let o = Engine.analyze Registry.usage_spec ~store prog in
        checki "every SCC misses" (List.length keys) o.Engine.scc_misses;
        let warm = Engine.analyze Registry.usage_spec ~store prog in
        checki "healed rerun is warm" 0 warm.Engine.evaluations);
    Alcotest.test_case "warm-rerun-is-free-for-every-analysis" `Quick (fun () ->
        with_dir "warm" @@ fun dir ->
        let store = Cache.Store.create dir in
        let prog () = infer Examples.partition_sort_program in
        List.iter
          (fun (e : Registry.entry) ->
            let cold = e.Registry.run ~store (prog ()) in
            checkb (e.Registry.name ^ " cold run solves") true
              (cold.Registry.evaluations > 0);
            let warm = e.Registry.run ~store (prog ()) in
            checki (e.Registry.name ^ " warm evaluations") 0 warm.Registry.evaluations;
            checki (e.Registry.name ^ " warm misses") 0 warm.Registry.scc_misses;
            checks (e.Registry.name ^ " warm output is identical")
              cold.Registry.output warm.Registry.output)
          Registry.all);
    Alcotest.test_case "record-carries-the-analysis-stamp" `Quick (fun () ->
        let spec = Registry.spinelive_spec in
        let prog = infer Examples.rev_program in
        let t = Spinelive.Solver.make prog in
        let defs = List.map (fun (n, _) -> Spinelive.report t n) prog.Nml.Infer.schemes in
        let j = Engine.record_to_json spec ~key:"k" defs in
        let module J = Nml.Json in
        (match J.member "analysis" j with
        | Some (J.Str s) -> checks "stamp" "spine-liveness" s
        | _ -> Alcotest.fail "missing analysis stamp");
        let members = List.map (fun (n, _) -> n) prog.Nml.Infer.schemes in
        checkb "decodes under its own spec" true
          (Engine.record_of_json spec ~key:"k" ~members j <> None);
        checkb "the usage spec refuses it" true
          (Engine.record_of_json Registry.usage_spec ~key:"k" ~members j = None));
  ]

(* ---- registry surface ------------------------------------------------------ *)

let registry_units =
  [
    Alcotest.test_case "registry-names-and-aliases" `Quick (fun () ->
        checkb "escape registered" true (Registry.find "escape" <> None);
        checkb "strictness aliases usage" true
          (match Registry.find "strictness" with
          | Some e -> String.equal e.Registry.name "usage"
          | None -> false);
        checkb "product aliases escape-x-usage" true
          (match Registry.find "product" with
          | Some e -> String.equal e.Registry.name "escape-x-usage"
          | None -> false);
        checkb "unknown name rejected" true (Registry.find "points-to" = None));
  ]

let () =
  Alcotest.run "framework"
    [
      ("legacy-differential", legacy_units);
      ("golden", golden_units);
      ("lattice-laws", lattice_units);
      ("witnesses", witness_units);
      ("sharing", alias_units);
      ( "sharing-oracle",
        [ QCheck_alcotest.to_alcotest qcheck_sharing_oracle ] );
      ("product", product_units);
      ("cache", cache_units);
      ("registry", registry_units);
    ]
