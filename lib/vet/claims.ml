module Ir = Runtime.Ir
module D = Nml.Diagnostic

type reuse_claim = {
  def : string;
  base : string;
  param : string;
  arg : int;
  arity : int;
  cons_sites : int;
  node_sites : int;
}

type arena_claim = {
  owner : string option;
  kind : Ir.arena_kind;
  id : int;
  body : Ir.expr;
}

let leading_params e =
  let rec go acc = function
    | Ir.Lam (x, b) -> go (x :: acc) b
    | b -> (List.rev acc, b)
  in
  go [] e

let head_and_args e =
  let rec go acc = function Ir.App (f, a) -> go (a :: acc) f | h -> (h, acc) in
  go [] e

let extract ~loc_of_def ~main_loc ~mono_names defs main =
  let diags = ref [] in
  let claims = ref [] in
  let arenas = ref [] in
  let scan ~owner rhs =
    let params, body =
      match owner with Some _ -> leading_params rhs | None -> ([], rhs)
    in
    let name = match owner with Some n -> n | None -> "the main expression" in
    let dloc = match owner with Some n -> loc_of_def n | None -> main_loc in
    let record ~tree p =
      let key = (name, p) in
      match List.assoc_opt key !claims with
      | Some c ->
          let c =
            if tree then { c with node_sites = c.node_sites + 1 }
            else { c with cons_sites = c.cons_sites + 1 }
          in
          claims := (key, c) :: List.remove_assoc key !claims
      | None ->
          let base = Erase.base ~defs:mono_names name in
          if not (List.mem base mono_names) then
            diags :=
              D.errorf ~code:"VET016" dloc
                "cannot verify the destructive claim in %s: no such definition \
                 in the analyzed program"
                name
              :: !diags
          else
            let rec idx i = function
              | [] -> 0
              | q :: _ when String.equal q p -> i
              | _ :: r -> idx (i + 1) r
            in
            let c =
              {
                def = name;
                base;
                param = p;
                arg = idx 1 params;
                arity = List.length params;
                cons_sites = (if tree then 0 else 1);
                node_sites = (if tree then 1 else 0);
              }
            in
            claims := (key, c) :: !claims
    in
    let site ~tree shadow args =
      let want = if tree then 4 else 3 in
      let prim = if tree then "dnode" else "dcons" in
      if List.length args <> want then
        diags :=
          D.errorf ~code:"VET017" dloc
            "%s applied to %d argument(s) in %s, expected %d" prim
            (List.length args) name want
          :: !diags
      else
        match List.hd args with
        | Ir.Var p when List.mem p params && not (List.mem p shadow) ->
            record ~tree p
        | _ ->
            diags :=
              D.errorf ~code:"VET010" dloc
                "%s source in %s is not an unshadowed leading parameter" prim
                name
              :: !diags
    in
    let rec go shadow e =
      match e with
      | Ir.WithArena (kind, id, b) ->
          arenas := { owner; kind; id; body = b } :: !arenas;
          go shadow b
      | Ir.Lam (x, b) -> go (x :: shadow) b
      | Ir.If (c, t, f) ->
          go shadow c;
          go shadow t;
          go shadow f
      | Ir.Letrec (bs, b) ->
          let shadow = List.map fst bs @ shadow in
          List.iter (fun (_, r) -> go shadow r) bs;
          go shadow b
      | Ir.App _ ->
          let head, args = head_and_args e in
          (match head with
          | Ir.Dcons -> site ~tree:false shadow args
          | Ir.Dnode -> site ~tree:true shadow args
          | _ -> go shadow head);
          List.iter (go shadow) args
      | Ir.Dcons -> site ~tree:false shadow []
      | Ir.Dnode -> site ~tree:true shadow []
      | Ir.Const _ | Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Var _ -> ()
    in
    go [] body
  in
  List.iter (fun (n, rhs) -> scan ~owner:(Some n) rhs) defs;
  scan ~owner:None main;
  (List.rev_map snd !claims, List.rev !arenas, List.rev !diags)
