(** Fixpoint solver for a whole program's top-level [letrec] group.

    The meaning of a recursive definition in the escape domain is its
    least fixpoint (section 3.5).  Because the spine annotations inside a
    polymorphic definition depend on the monomorphic instance at which it
    is used, the solver memoizes abstract values per
    {e (definition, ground instance type)} pair, re-typing the definition
    at each demanded instance ({!Nml.Infer.instantiate_def}) — the lazy
    equivalent of whole-program monomorphization.  Mutual and self
    recursion are solved by chaotic iteration over the memo table, with
    convergence decided by {!Probe.equal}.

    Iteration is capped ([max_iters], default 200 rounds); on a cap hit
    every cached value is widened to the top of its type — the safe
    direction (everything escapes) — and {!capped} reports it. *)

type t

val make : ?max_iters:int -> Nml.Infer.program -> t
(** Builds a solver; nothing is computed until a value is demanded. *)

val of_source : ?max_iters:int -> string -> t
(** Parse, infer and wrap a program given as source text. *)

val program : t -> Nml.Infer.program

val d : t -> int
(** Current chain bound: the largest spine count of any list type seen in
    the main expression or any demanded instance. *)

val value : t -> string -> Nml.Ty.t option -> Dvalue.t
(** [value t f (Some ty)] is the abstract value of definition [f] at the
    ground instance [ty]; [value t f None] uses the simplest monotyped
    instance.  Stabilizes the memo table before returning.
    @raise Invalid_argument for unknown definitions, {!Nml.Infer.Error}
    if [ty] is not an instance of [f]'s scheme. *)

val instance_ty : t -> string -> Nml.Ty.t
(** Ground type of the simplest instance of a definition. *)

val eval_expr : t -> Nml.Tast.texpr -> Dvalue.t
(** Abstract value of an arbitrary ground typed expression (local
    environment empty), resolving definition references through the
    solver. *)

val main_value : t -> Dvalue.t
(** Abstract value of the program's main expression. *)

val stabilize : t -> unit
(** Runs chaotic iteration until no cached value changes. *)

(** {2 Statistics (for the cost experiments)} *)

val iterations : t -> int
(** Total Kleene rounds, including nested [letrec]s. *)

val passes : t -> int
(** Chaotic-iteration passes over the memo table. *)

val instances : t -> (string * Nml.Ty.t) list
(** Every (definition, instance) pair materialized so far. *)

val capped : t -> bool
