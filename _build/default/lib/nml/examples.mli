(** Canned [nml] programs: the paper's running examples plus a catalogue
    of classic list functions used throughout the tests and benches.

    Each value is concrete syntax accepted by {!Parser.parse}.  The
    programs with a [_program] suffix are complete (top-level [letrec]
    with a main expression); the others are definition snippets meant to
    be spliced into {!wrap}. *)

val append_def : string
(** [APPEND x y] (Appendix A): all of [y] and all but the top spine of
    [x] escape. *)

val split_def : string
(** [SPLIT p x l h] (Appendix A): partitions [x] around the pivot [p],
    returning the two-spined list [[l', h']]. *)

val ps_def : string
(** [PS x] (Appendix A): partition sort; all but the top spine of the
    argument escapes. *)

val rev_def : string
(** Naive reverse via [APPEND] (Appendix A.3.2). *)

val map_def : string
val pair_def : string
(** The introduction's example: [pair x = [car x, car (cdr x)]] copies the
    first two elements of [x] into a fresh spine, so the top spine of the
    parameter does not escape, only elements do. *)

val length_def : string
val sum_def : string
val member_def : string
val take_def : string
val drop_def : string
val nth_def : string
val last_def : string
val filter_def : string
val insert_def : string
val isort_def : string
val concat_def : string
(** [concat : 'a list list -> 'a list] — flattens one level. *)

val create_list_def : string
(** [create_list n] builds [[n, n-1, ..., 1]] (Appendix A.3.3). *)

val id_def : string
val const_def : string
val compose_def : string
val foldr_def : string

val zip_def : string
(** [zip : 'a list -> 'b list -> ('a * 'b) list] — elements escape into
    fresh pairs, neither spine escapes. *)

val unzip_fsts_def : string
val unzip_snds_def : string
(** [fsts]/[snds : ('a * 'b) list -> 'a/'b list] — one pair component
    escapes per element, the spine and the pair cells do not. *)

val swap_def : string
(** [swap : 'a * 'b -> 'b * 'a]. *)

val assoc_def : string
(** [assoc : 'a -> int -> (int * 'a) list -> 'a] — association lookup
    with a default. *)

val tmap_def : string
(** [tmap : ('a -> 'b) -> 'a tree -> 'b tree] — rebuilds every node, so
    the node cells never escape (like [map] for lists). *)

val tinsert_def : string
(** [tinsert : int -> int tree -> int tree] — BST insert; the untouched
    subtrees are shared into the result, so the whole tree may escape. *)

val tsum_def : string
val mirror_def : string
(** [mirror : 'a tree -> 'a tree] — rebuilds every node. *)

val flatten_def : string
(** [flatten : 'a tree -> 'a list] (needs [append]) — labels escape, node
    cells do not. *)

val wrap : string list -> string -> string
(** [wrap defs main] assembles a complete program
    [letrec d1; ...; dn in main]. *)

val partition_sort_program : string
(** The complete Appendix A program:
    [letrec APPEND; SPLIT; PS in PS [5,2,7,1,3,4]] (lower-case names). *)

val map_pair_program : string
(** The introduction's [map pair [[1,2],[3,4],[5,6]]]. *)

val rev_program : string
(** [rev [1,...,5]]. *)

val all_defs : (string * string) list
(** Name/source pairs for every definition above. *)
