lib/optimize/stackalloc.mli: Escape Nml Runtime
