(** Types of [nml] and the spine arithmetic the analysis needs.

    The paper assumes programs are (monomorphically) typed before the
    analysis runs: the number of {e spines} of every list-typed expression
    is read off its type, and every occurrence of [car] is annotated as
    [car^s] with the spine count of its argument (section 3.4).

    Types contain mutable unification variables ({!Var}) so that the same
    representation serves Hindley-Milner inference ({!Infer}).  All
    observers below implicitly follow variable links. *)

type t =
  | Int
  | Bool
  | List of t
  | Tree of t  (** binary tree type [t tree] with labels of type [t] *)
  | Prod of t * t  (** pair type [t1 * t2] *)
  | Arrow of t * t
  | Var of var ref

and var =
  | Unbound of int * int  (** unique id, binding level *)
  | Link of t

val fresh_var : level:int -> t
(** A fresh unbound unification variable at the given level. *)

val repr : t -> t
(** Canonical representative: follows [Link]s (with path compression). *)

val spines : t -> int
(** Number of spines of a value of this type (Definition 1): 0 for
    non-lists, [1 + spines elt] for [elt list].  An [int list list] has 2
    spines.  A tree's node cells form one spine-like level, so
    [spines (elt tree) = 1 + spines elt] as well.  Unresolved variables
    count as non-lists. *)

val max_list_depth : t -> int
(** Largest {!spines} value of any list type occurring inside the type;
    used to compute the per-program escape-domain bound [d]. *)

val owns_cells : t -> bool
(** Does a value of this type occupy heap cells?  False only for [int]
    and [bool]: list and tree values are made of cells, a pair is itself
    one cell, and a closure may capture cell-owning values.  An unbound
    variable is conservatively cell-owning (it could be instantiated to
    any of those).  This is the sharing analysis' notion of "structured":
    extracting an element of a cell-owning type from a list keeps a hold
    of the argument's heap, where an [int] element cannot. *)

val arity : t -> int
(** The paper's [m]: number of arguments a function of this type can take
    before returning a primitive value.  [arity (a -> b) = 1 + arity b],
    [arity (t list) = arity t] (Definition 2), 0 for [int]/[bool]. *)

type shape = Sbase | Sarrow of t * t | Sprod of t * t

val shape : t -> shape
(** Shape of the abstract escape domain [D_e] at this type after the list
    collapse [D_e^{t list} = D_e^t] (section 3.4): list types take the
    shape of their element type.  Pair types have product shape with
    per-component domains — the extension the paper sketches for tuples
    (section 7). *)

val result_ty : t -> int -> t
(** [result_ty t n] is the result type after applying [n] arguments;
    fails on non-arrows. *)

val arg_tys : t -> int -> t list
(** [arg_tys t n] is the list of the first [n] argument types. *)

val equal : t -> t -> bool
(** Structural equality up to links; unbound variables equal only
    themselves. *)

val contains_var : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints ML style: [int list -> 'a list -> 'a list].  Variables are
    named ['a], ['b], ... deterministically within one call. *)

val to_string : t -> string
