(** Abstract escape values: the domain [D_e] of section 3.4, together
    with its application engine, extended to products (the paper's
    "tuples, trees, etc." remark in sections 1 and 7).

    A value pairs a basic escape value (its "first component", what part
    of the interesting object it may contain) with an abstract function
    (its "second component", its behaviour when applied).  The list
    subdomain is collapsed onto the element domain
    ([D_e^{t list} = D_e^t]), so the {e shape} of a value follows
    {!Nml.Ty.shape}: base-shaped values carry the inapplicable [err]
    function, arrow-shaped values carry a real one, and product-shaped
    values additionally carry one abstract value {e per component}
    ([D_e^{t1 * t2}] tracks components separately; [fst]/[snd] project).
    Values also carry their [nml] type — it drives bottoms, tops,
    worst-case functions and probes, never the ordering — and a unique
    [id] used for caching.

    {b Pending application.}  The function component of a recursive
    definition's abstract value re-enters itself when applied (the
    abstract [cdr] is the identity, so recursive calls repeat the same
    abstract arguments).  {!apply} therefore performs the classic
    {e pending analysis} of higher-order abstract interpretation: each
    (function id, argument key) gets a table entry; a cyclic re-entry
    returns the entry's current approximation (initially the bottom of
    the result type); when the body's result exceeds the approximation
    the application is re-run until it stabilizes.  Domains are finite
    (section 3.5), so this terminates and computes the least fixpoint of
    the self-application.  Completed entries also serve as a memo table,
    which makes evaluation polynomial where naive unfolding is
    exponential in the Kleene depth.

    The argument key of a base-shaped argument is its basic escape value
    (exact: such a value is determined by it); for an arrow-shaped
    argument it is the value's [id] (sound: same id, same value); for a
    product it is the tuple of component keys.

    {b Chain bound.}  Extensional comparison probes functions with every
    element of the basic chain [B_e] up to the bound [d] of the current
    {!state}, a maximum set with {!ensure_d}.  Growing [d] only adds
    probes (finer comparison), so the setting is monotone and safe.

    {b Solver state.}  All mutable engine state — the application memo,
    the probe and intern tables, the chain bound, the read-frame stack
    and the statistics counters — lives in an explicit {!state}.  Each
    domain has a private ambient state ({!current_state}); a solver owns
    a state of its own and installs it with {!with_state} around every
    operation, so concurrently live solvers (including solvers in
    different domains) are shared-nothing.  Value and source {e ids} are
    process-global atomics: they are pure identity tags, and keeping them
    globally unique makes values safe to carry across states (a foreign
    value at worst misses a memo, it can never collide). *)

type t = private {
  id : int;  (** unique per constructed value *)
  ty : Nml.Ty.t;  (** type of the expression this value abstracts *)
  esc : Besc.t;  (** first component *)
  app : t -> t;  (** second component; raises {!Err_applied} for base shapes *)
  prod : (t * t) option;  (** per-component values for product shapes *)
}

exception Err_applied
(** Raised when the paper's [err] — "a function that can never be
    applied" — is applied.  This cannot happen on well-typed programs. *)

val v : ty:Nml.Ty.t -> esc:Besc.t -> app:(t -> t) -> t
val base : ty:Nml.Ty.t -> Besc.t -> t

val pair : ty:Nml.Ty.t -> esc:Besc.t -> t * t -> t
(** A product-shaped value from its component values; [esc] is the
    containment attributed to the pair structure itself (usually the
    spine containment when the pair sits in a list). *)

val with_esc : Besc.t -> t -> t
(** Same behaviour and components, different first component. *)

val with_ty : Nml.Ty.t -> t -> t

val fst_of : t -> t
val snd_of : t -> t
(** Component projections.  On a product-shaped value without structural
    information (e.g. produced by a worst-case stage) the projection is
    the conservative saturation of the value's own containment. *)

val total_esc : t -> Besc.t
(** Everything contained anywhere in the value: its first component
    joined with its components', recursively.  Coincides with [esc] on
    non-product values. *)

val bottom : Nml.Ty.t -> t
(** Least element at a type: [<0,0>] everywhere. *)

val top : d:int -> Nml.Ty.t -> t
(** Greatest element bounded by [d]: [<1,d>] everywhere. *)

val saturate : esc:Besc.t -> Nml.Ty.t -> t
(** "Something with containment [esc] of unknown structure": functions
    absorb their arguments, components inherit [esc]. *)

(** {2 Solver state} *)

type state
(** One engine's worth of mutable state: application memo, probe and
    intern tables, chain bound, read frames, statistics counters. *)

val create_state : unit -> state
(** A cold state: empty tables, bound 0, zeroed counters. *)

val current_state : unit -> state
(** The state every stateful operation below works over: the innermost
    {!with_state} installation, or the calling domain's private ambient
    state when none is installed. *)

val with_state : state -> (unit -> 'a) -> 'a
(** [with_state s f] runs [f] with [s] installed as the current state
    (exception-safe, properly nesting).  The installation is per-domain:
    other domains are unaffected. *)

(** {2 Chain bound} *)

val ensure_d : int -> unit
(** Raises the current state's chain bound to at least the given value. *)

val current_d : unit -> int

(** {2 Dependency sources and selective invalidation}

    The bodies behind abstract function components read other
    definitions' values {e at application time} (through the solver's
    global hook), so a memoized application silently depends on solver
    state that may move between fixpoint passes.  Rather than dropping
    the whole memo table between passes, every mutable input is
    represented by a generation-stamped {!source}: the solver calls
    {!note_read} when a value is read and {!touch} when it changes, each
    memo entry records the sources (and generations) its computation
    read, and {!apply} discards an entry only when one of its recorded
    sources has actually been touched since. *)

type source
(** A generation-stamped cell of mutable analysis state (the solver
    allocates one per fixpoint entry). *)

val new_source : unit -> source
val source_id : source -> int
(** Process-unique identifier, stable for the source's lifetime. *)

val touch : source -> unit
(** Advance the generation: every memo entry that read this source is now
    stale and will be recomputed on its next lookup. *)

val note_read : source -> unit
(** Record a read of the source (at its current generation) in the
    innermost open read frame; no-op outside any frame. *)

val with_reads : (unit -> 'a) -> 'a * (source * int) list
(** [with_reads f] runs [f] in a fresh {e isolated} read frame and
    returns its result together with every (source, generation-at-read)
    pair noted during the run — including reads replayed from memo hits,
    so the list is the computation's true transitive read set.  Isolated
    means the reads are not propagated to any enclosing frame: they
    belong to the solver entry being evaluated, not to an enclosing
    application. *)

(** {2 Operations} *)

val join : t -> t -> t
(** Pointwise least upper bound (component-wise on products); keeps the
    left type. *)

val apply : t -> t -> t
(** Pending, memoized application (see above). *)

val apply_all : t -> t list -> t

val probes : Nml.Ty.t -> t list
(** Canonical argument values for an argument of the given type at the
    current chain bound: every element of [B_e] for base shapes, crossed
    with the worst-case and bottom function components for arrow shapes,
    the cross product of component probes for products.  Cached per
    (bound, type) so repeated comparisons reuse value ids. *)

val equal : t -> t -> bool
(** Extensional equality with respect to {!probes}, recursing through the
    (finite) type structure.  Exact for first-order types. *)

val leq : t -> t -> bool

(** {2 Worst-case and probe arguments (Definition 2)} *)

val w_value : esc:Besc.t -> Nml.Ty.t -> t
(** [⟨esc, W^t⟩] where [W = λx1.⟨x1', λx2.⟨x1' ⊔ x2', ... ⟨⨆ xi', err⟩⟩⟩]
    consumes the [m] arguments a value of type [t] accepts before
    returning a primitive value, and [W^{t list} = W^t].  Arguments
    contribute their {!total_esc}. *)

val interesting : Nml.Ty.t -> t
(** The global test's [y_i]: every structural level marked with its own
    spine count [<1, spines>], function components worst-case. *)

val boring : Nml.Ty.t -> t
(** The global test's [y_j], [j <> i]: [<0,0>] at every level. *)

val mark_interesting : t -> t
val mark_boring : t -> t
(** The local test's [z_i]/[z_j] (section 4.2): the value's actual
    behaviour with its containment replaced by [<1, spines>] (resp.
    [<0,0>]) at every structural level. *)

(** {2 Component-resolved tests (products)}

    With a pair-typed parameter, a single basic escape value conflates
    the component chains; the precise question is asked per component:
    treat only the sub-structure at a projection path as the interesting
    object. *)

type component = Cfst | Csnd

val probe_component : path:component list -> Nml.Ty.t -> t
(** Like {!interesting}, but only the component at [path] is marked. *)

val mark_component : path:component list -> t -> t
(** Like {!mark_interesting}, but only the component at [path]. *)

(** {2 Caches and statistics} *)

val clear_cache : unit -> unit
(** Drops every application entry wholesale (results stay correct;
    cost/memory only).  The legacy round-robin solver clears between
    passes; the worklist solver never needs to — staleness is detected
    per entry via the recorded sources. *)

val cache_stats : unit -> int * int
(** (hits, misses) since {!reset_stats}. *)

val invalidations : unit -> int
(** Memo entries discarded because a recorded source was touched, since
    {!reset_stats}. *)

val reset_stats : unit -> unit
(** The round-robin-era [reset_engine] shim is gone: a cold start is a
    fresh {!create_state} installed with {!with_state} — every solver
    already owns one. *)

val pp : Format.formatter -> t -> unit
(** Prints the basic component and the type, e.g. [<1,1> : int list]. *)
