lib/runtime/machine.mli: Format Ir Nml Stats
