(** The in-place reuse transformation (section 6, appendix A.3.2).

    A definition [f] whose [i]-th parameter [x] is a list with at least
    one non-escaping top spine can be given a {e primed version} [f'] in
    which a [cons] after which [x] is dead (and where [x] is certainly a
    cell) is replaced by [DCONS x ...], recycling [x]'s spine cell
    instead of allocating:

    {v
      append' x y = if null x then y
                    else DCONS x (car x) (append' (cdr x) y)
    v}

    Calling [f'] is only sound when the actual argument's top spine is
    {e unshared} and dead after the call, so call sites are rewritten to
    the primed version only when the argument is certainly fresh: a list
    literal, or a call to a definition whose result's top spine Theorem 2
    proves unshared.  Recursive calls of [f'] on a [cdr]-suffix of [x]
    stay primed (the suffix of an unshared dead spine is unshared and
    dead). *)

type candidate = {
  def : string;
  primed : string;  (** name of the destructive version, [def ^ "'"] *)
  arg : int;  (** 1-based reused parameter position *)
  param : string;
  loc : Nml.Loc.t;
      (** surface position of the reused parameter's binder (locations
          survive monomorphization, so this points at source) *)
  sites : Liveness.site list;  (** cons sites rewritten to [DCONS] *)
  node_sites : Liveness.site list;
      (** tree-node sites rewritten to [DNODE] (tree-typed parameters) *)
}

type report = {
  candidates : candidate list;
  substituted_calls : int;  (** call sites redirected to primed versions *)
  alias_licensed : int;
      (** redirected sites licensed only by the flow-sensitive sharing
          analysis — the Theorem-2 freshness recursion alone proved
          nothing there (branch-local conses, cons-stitched arguments,
          let-bound intermediate spines) *)
}

val candidates : Escape.Fixpoint.t -> Nml.Surface.t -> candidate list
(** Definitions admitting a primed version: a list-typed parameter whose
    top spine never escapes ([G]) together with at least one eligible,
    nil-guarded cons site. *)

val primed_rhs :
  ?alias:Framework.Alias.Solver.t ->
  Escape.Fixpoint.t ->
  Nml.Surface.t ->
  candidate ->
  Runtime.Ir.expr
(** Right-hand side of the primed version (with call sites inside it
    already redirected where sound). *)

val apply :
  ?alias:Framework.Alias.Solver.t ->
  Escape.Fixpoint.t ->
  Nml.Surface.t ->
  (string * Runtime.Ir.expr) list * Nml.Ast.expr * report
(** The pieces of the transformation: the primed definitions, the main
    expression with call sites redirected, and the report.  Original
    definitions are untouched.  Used by {!Transform} to compose with the
    arena annotations.

    When [alias] supplies a sharing solver (built over the same inferred
    program), call-site freshness is judged by the flow-sensitive
    {!Framework.Alias.Local} abstract heap joined with the Theorem-2
    recursion, licensing strictly more redirections; without it the
    behaviour is exactly the Theorem-2 baseline. *)

val program :
  ?alias:Framework.Alias.Solver.t ->
  Escape.Fixpoint.t ->
  Nml.Surface.t ->
  Runtime.Ir.expr * report
(** The whole program with primed versions added alongside the original
    definitions and sound call sites redirected (in primed bodies and in
    the main expression; original definitions are kept intact). *)
