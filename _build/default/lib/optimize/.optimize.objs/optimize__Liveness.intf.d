lib/optimize/liveness.mli: Nml
