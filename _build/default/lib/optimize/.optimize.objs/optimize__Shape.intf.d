lib/optimize/shape.mli: Nml
