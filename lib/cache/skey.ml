(* Content-addressed keys for the persistent summary cache.

   One key per SCC of the definition-level callgraph.  The key digests
   everything the SCC's summaries can depend on:

   - the schema version (a format bump invalidates every entry),
   - each member's name, simplest-instance type and *normalized* body
     (the pretty-printed AST, so whitespace and comments don't move the
     key),
   - the chain bound of the SCC's own cone (the largest list depth of any
     type in a member's instantiated body),
   - the keys of every callee SCC.

   The last point makes dirtiness transitive along [Nml.Callgraph]:
   editing a definition changes its SCC's key and, through the recursive
   digest, the key of every SCC that (transitively) reads it — while the
   SCCs it depends on keep their keys and stay warm. *)

module Infer = Nml.Infer
module Ty = Nml.Ty

(* v2 (PR8): summary payloads are namespaced per analysis Spec — the
   analysis name is digested into every key and stamped into every
   record.  Pre-PR8 v1 shards therefore miss cleanly on both the schema
   stamp and the key itself; they are never mis-decoded. *)
let schema_version = "nmlc/summary-cache-v2"

type t = {
  sccs : (string * string list) list;  (* (key, members) dependencies first *)
  by_def : (string, string) Hashtbl.t;  (* member name -> its SCC's key *)
}

let sccs t = t.sccs
let key_of_def t name = Hashtbl.find_opt t.by_def name

let cone_depth prog name =
  let d = ref 0 in
  let tast = Infer.instantiate_def prog name None in
  Nml.Tast.iter_tys (fun ty -> d := max !d (Ty.max_list_depth ty)) tast;
  !d

let member_descriptor prog name =
  let inst = Infer.simplest_instance prog name in
  let body = Nml.Surface.def prog.Infer.surface name in
  Printf.sprintf "%s : %s = %s" name (Ty.to_string inst) (Nml.Pretty.to_string body)

let of_program ?(analysis = "escape") prog =
  let cg = Nml.Callgraph.of_program prog in
  let by_def = Hashtbl.create 16 in
  let sccs =
    List.map
      (fun members ->
        let sorted = List.sort String.compare members in
        let descriptors = List.map (member_descriptor prog) sorted in
        let d = List.fold_left (fun acc m -> max acc (cone_depth prog m)) 0 sorted in
        let callee_keys =
          List.concat_map
            (fun m ->
              List.filter_map
                (fun r ->
                  if List.mem r members then None else Hashtbl.find_opt by_def r)
                (Nml.Callgraph.refs cg m))
            sorted
          |> List.sort_uniq String.compare
        in
        let key =
          Digest.to_hex
            (Digest.string
               (String.concat "\n"
                  ((schema_version
                   :: Printf.sprintf "analysis=%s" analysis
                   :: Printf.sprintf "d=%d" d :: descriptors)
                  @ ("callees:" :: callee_keys))))
        in
        List.iter (fun m -> Hashtbl.replace by_def m key) members;
        (key, members))
      (Nml.Callgraph.sccs cg)
  in
  { sccs; by_def }
