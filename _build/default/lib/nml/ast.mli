(** Abstract syntax of [nml], the "not much of a language" calculus of
    Park & Goldberg (PLDI 1992, section 3.1).

    The surface language is strict, higher order, and list manipulating:

    {v
      e ::= c | x | e1 e2 | lambda(x). e
          | if e1 then e2 else e3
          | letrec x1 = e1; ...; xn = en in e
    v}

    Constants include the usual integers and booleans plus the list
    primitives [nil], [cons], [car], [cdr] and [null].  Multi-parameter
    definitions [f x1 ... xn = e], [let], list literals and the binary
    operators are syntactic sugar, eliminated by the parser. *)

type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Not
  | Cons
  | Car
  | Cdr
  | Null
  | Pair
  | Fst
  | Snd
  | Node  (** [node left label right] builds a binary tree node *)
  | Isleaf
  | Label
  | Left
  | Right

type const = Cint of int | Cbool of bool | Cnil | Cleaf

type expr =
  | Const of Loc.t * const
  | Prim of Loc.t * prim
  | Var of Loc.t * string
  | App of Loc.t * expr * expr
  | Lam of Loc.t * string * expr
  | If of Loc.t * expr * expr * expr
  | Letrec of Loc.t * (string * expr) list * expr

type program = expr
(** A program is an expression, conventionally a top-level [letrec]. *)

val loc : expr -> Loc.t

val prim_name : prim -> string
(** Source-level name ([Add] is ["+"], [Cons] is ["cons"], ...). *)

val prim_of_name : string -> prim option
(** Inverse of {!prim_name} for alphabetic primitives only ([cons], [car],
    [cdr], [null], [mkpair], [fst], [snd]); operators are produced directly
    by the parser. *)

val prim_arity : prim -> int

val equal_prim : prim -> prim -> bool
val equal_const : const -> const -> bool

val equal : expr -> expr -> bool
(** Structural equality, ignoring locations. *)

val free_vars : expr -> string list
(** Free identifiers in order of first occurrence, without duplicates.
    Primitives are not identifiers and never appear. *)

val subst_var : string -> string -> expr -> expr
(** [subst_var x y e] renames free occurrences of [x] to [y]
    (capture is not avoided; used only with fresh names). *)

val app : expr -> expr list -> expr
(** [app f [a1;...;an]] builds the curried application [f a1 ... an];
    locations are merged. *)

val lams : string list -> expr -> expr
(** [lams [x1;...;xn] e] builds [lambda(x1)....lambda(xn). e]. *)

val list_lit : Loc.t -> expr list -> expr
(** Desugars [[e1, ..., en]] into [cons e1 (cons ... nil)]. *)

val int : int -> expr
val bool : bool -> expr
val nil : expr
val var : string -> expr
(** Location-free smart constructors for building programs in OCaml. *)

val size : expr -> int
(** Number of AST nodes; used by benches to report program size. *)
